//! The `repro analyze` pass: runs every analysis a unit supports and
//! renders the combined report as text or JSON.
//!
//! Barrier units get cycle attribution plus episode/critical-path
//! extraction; open-loop units get cycle attribution plus the per-tenant
//! SLO timeline. Units the passes cannot interpret (e.g. packet-network
//! traces, which have counter lanes but no processor occupancy spans)
//! carry their error message instead of a report — one odd unit never
//! hides the others.

use abs_exec::json::Value;
use abs_obs::trace::Event;

use crate::attribution::{attribute, Attribution, Options, UnitKind};
use crate::episodes::{episode, Episode};
use crate::slo::{slo_timeline, SloTimeline};

/// Heatmap width in columns.
const HEATMAP_WIDTH: usize = 64;
/// Most lanes a heatmap or per-processor table draws before eliding.
const MAX_RENDERED_LANES: usize = 16;
/// Default SLO timeline window count.
pub const SLO_WINDOWS: usize = 8;

/// Every analysis one unit supports.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitReport {
    /// The cycle-attribution report (always present).
    pub attribution: Attribution,
    /// Episode extraction, for barrier units.
    pub episode: Option<Episode>,
    /// The SLO timeline, for open-loop units.
    pub slo: Option<SloTimeline>,
}

/// One unit's analysis outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitAnalysis {
    /// The unit name (from the trace's process metadata).
    pub unit: String,
    /// The report, or why the unit could not be analyzed.
    pub result: Result<UnitReport, String>,
}

/// Analyzes one unit's events.
///
/// # Errors
///
/// Returns a message when the unit is not attributable (see
/// [`crate::attribution::attribute`]).
pub fn analyze_unit(events: &[Event], opts: &Options) -> Result<UnitReport, String> {
    let attribution = attribute(events, opts)?;
    let (episode, slo) = match attribution.kind {
        UnitKind::Barrier => (Some(episode(events)?), None),
        UnitKind::OpenLoop => (None, Some(slo_timeline(events, SLO_WINDOWS)?)),
    };
    Ok(UnitReport {
        attribution,
        episode,
        slo,
    })
}

/// Analyzes every unit of a trace, carrying per-unit errors.
pub fn analyze_units(units: &[(String, Vec<Event>)]) -> Vec<UnitAnalysis> {
    units
        .iter()
        .map(|(unit, events)| UnitAnalysis {
            unit: unit.clone(),
            result: analyze_unit(events, &Options::default()),
        })
        .collect()
}

/// Whether every analyzed unit satisfied the conservation invariant
/// (units that could not be analyzed at all do not count against it).
pub fn conserved(analyses: &[UnitAnalysis]) -> bool {
    analyses
        .iter()
        .filter_map(|a| a.result.as_ref().ok())
        .all(|r| r.attribution.conserved())
}

/// Renders the full text report.
pub fn render_text(analyses: &[UnitAnalysis]) -> String {
    let mut out = String::new();
    for analysis in analyses {
        out.push_str(&format!("== {} ==\n", analysis.unit));
        match &analysis.result {
            Err(err) => out.push_str(&format!("not analyzable: {err}\n\n")),
            Ok(report) => {
                out.push_str(&report.attribution.to_table().to_string());
                out.push_str(
                    &report
                        .attribution
                        .heatmap(HEATMAP_WIDTH, MAX_RENDERED_LANES),
                );
                if let Some(episode) = &report.episode {
                    out.push_str(&episode.summary());
                    out.push('\n');
                }
                if let Some(slo) = &report.slo {
                    out.push_str(&slo.to_table().to_string());
                    out.push_str(&slo.sparklines());
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Renders the full report as a JSON value (deterministic key order).
pub fn render_json(analyses: &[UnitAnalysis]) -> Value {
    Value::Obj(vec![
        ("conserved".to_string(), Value::Bool(conserved(analyses))),
        (
            "units".to_string(),
            Value::Arr(
                analyses
                    .iter()
                    .map(|analysis| {
                        let mut fields = vec![(
                            "unit".to_string(),
                            Value::Str(analysis.unit.clone()),
                        )];
                        match &analysis.result {
                            Err(err) => {
                                fields.push(("error".to_string(), Value::Str(err.clone())))
                            }
                            Ok(report) => {
                                fields.push((
                                    "attribution".to_string(),
                                    report.attribution.to_json(),
                                ));
                                if let Some(episode) = &report.episode {
                                    fields.push(("episode".to_string(), episode.to_json()));
                                }
                                if let Some(slo) = &report.slo {
                                    fields.push(("slo".to_string(), slo.to_json()));
                                }
                            }
                        }
                        Value::Obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_obs::trace::{Ring, TraceSink};

    fn units() -> Vec<(String, Vec<Event>)> {
        let mut barrier = Ring::new(64);
        barrier.span_begin(0, 0, "barrier", &[]);
        barrier.span_begin(0, 0, "var", &[]);
        barrier.span_end(0, 1, "var", &[("accesses", 1.0), ("count", 1.0)]);
        barrier.span_begin(0, 2, "flag-write", &[]);
        barrier.span_end(0, 3, "flag-write", &[]);
        barrier.instant(0, 3, "flag-set", &[]);
        barrier.span_end(0, 5, "barrier", &[]);
        let mut load = Ring::new(64);
        load.instant(0, 0, "admit", &[("tenant", 0.0), ("wait", 0.0)]);
        load.span_begin(0, 0, "faa", &[("tenant", 0.0)]);
        load.instant(0, 0, "sync-win", &[("attempts", 0.0)]);
        load.span_end(0, 4, "faa", &[]);
        let mut opaque = Ring::new(8);
        opaque.counter(0, 0, "hot_queue", &[("depth", 1.0)]);
        vec![
            ("barrier unit".to_string(), barrier.into_events()),
            ("load unit".to_string(), load.into_events()),
            ("packet unit".to_string(), opaque.into_events()),
        ]
    }

    #[test]
    fn analyzes_mixed_units_and_carries_errors() {
        let analyses = analyze_units(&units());
        assert_eq!(analyses.len(), 3);
        let barrier = analyses[0].result.as_ref().unwrap();
        assert!(barrier.episode.is_some() && barrier.slo.is_none());
        let load = analyses[1].result.as_ref().unwrap();
        assert!(load.episode.is_none() && load.slo.is_some());
        assert!(analyses[2].result.is_err());
        assert!(conserved(&analyses));
    }

    #[test]
    fn renders_text_and_json() {
        let analyses = analyze_units(&units());
        let text = render_text(&analyses);
        assert!(text.contains("== barrier unit =="));
        assert!(text.contains("cycle attribution"));
        assert!(text.contains("episode:"));
        assert!(text.contains("per-tenant SLO"));
        assert!(text.contains("not analyzable"));
        let json = render_json(&analyses).render_pretty();
        assert!(json.contains("\"attribution\""));
        assert!(json.contains("\"slo\""));
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_json(&analyze_units(&units())).render_pretty();
        let b = render_json(&analyze_units(&units())).render_pretty();
        assert_eq!(a, b);
    }
}
