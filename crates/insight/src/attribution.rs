//! The cycle-attribution pass: where every simulated processor-cycle went.
//!
//! Given the trace events of one unit (one traced barrier episode or one
//! open-loop run), the pass tiles every processor lane's analysis window
//! with disjoint half-open [`Segment`]s, each labelled with a [`Bucket`].
//! Because the tiling is built by *carving* sub-intervals out of a filler
//! that always covers the remainder, the conservation invariant
//!
//! > per-processor bucket totals sum **exactly** to the window length, and
//! > the report totals sum exactly to `window length × processors`
//!
//! holds by construction — [`Attribution::conserved`] re-checks it
//! defensively and the report refuses to render as conserved otherwise.
//!
//! # Bucket semantics
//!
//! | bucket | barrier lanes | open-loop lanes |
//! |---|---|---|
//! | work | cycles outside the `barrier` span (compute phase) | cycles between a `sync-win` instant (exclusive) and job completion |
//! | spin-poll | residual inside `barrier`: polling the counter/flag | residual inside a job span: sync-op attempt cycles |
//! | backoff-wait | `backoff` spans and post-`park` quiescence | `backoff` spans between failed attempts |
//! | queue-stall | `var` and `flag-write` spans (module arbitration) | — (admission wait lives in the SLO timeline) |
//! | net-transit | — (the dance-hall network is one cycle, folded into the access) | `rmw-read` load cycles of CAS read-modify-write ops |
//! | idle | — (every barrier processor is always in some phase) | cycles with no admitted job on the processor |
//!
//! Span interval conventions follow the emitters: barrier `var` /
//! `flag-write` spans are closed on both ends (the End cycle is the serve
//! cycle, which the access consumes), `backoff` spans and open-loop job
//! spans are half-open (the End cycle belongs to the successor), and a job
//! force-closed at the horizon (flagged by a `truncated` instant) is
//! extended through the horizon cycle so occupancy matches the engine's
//! busy/idle accounting exactly.

use std::collections::BTreeMap;

use abs_exec::json::Value;
use abs_obs::trace::{Event, Phase};
use abs_sim::table::{fmt_percent, Table};

/// Open-loop job-span names, as emitted by `abs_load` (`OpKind::label`).
pub(crate) const OP_LABELS: [&str; 3] = ["faa", "spin", "rmw"];

/// Where a processor-cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bucket {
    /// Useful work: compute phase (barrier) or admitted-job service.
    Work,
    /// Spin-polling a synchronization variable (network accesses).
    SpinPoll,
    /// Waiting out a backoff delay (or parked): no network traffic.
    BackoffWait,
    /// Queued at a memory module waiting for arbitration.
    QueueStall,
    /// In flight on the interconnect (read legs of read-modify-write).
    NetTransit,
    /// No job admitted on this processor.
    Idle,
}

impl Bucket {
    /// All buckets, in report order.
    pub const ALL: [Bucket; 6] = [
        Bucket::Work,
        Bucket::SpinPoll,
        Bucket::BackoffWait,
        Bucket::QueueStall,
        Bucket::NetTransit,
        Bucket::Idle,
    ];

    /// Number of buckets (the length of per-lane totals arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake-case name used in tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Work => "work",
            Bucket::SpinPoll => "spin_poll",
            Bucket::BackoffWait => "backoff_wait",
            Bucket::QueueStall => "queue_stall",
            Bucket::NetTransit => "net_transit",
            Bucket::Idle => "idle",
        }
    }

    /// One-character glyph used by the lane heatmap.
    pub fn glyph(self) -> char {
        match self {
            Bucket::Work => 'W',
            Bucket::SpinPoll => 's',
            Bucket::BackoffWait => 'b',
            Bucket::QueueStall => 'q',
            Bucket::NetTransit => 'n',
            Bucket::Idle => '.',
        }
    }

    fn index(self) -> usize {
        match self {
            Bucket::Work => 0,
            Bucket::SpinPoll => 1,
            Bucket::BackoffWait => 2,
            Bucket::QueueStall => 3,
            Bucket::NetTransit => 4,
            Bucket::Idle => 5,
        }
    }
}

/// The kind of traced unit the pass recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// A `BarrierSim` episode (`barrier`/`var`/`flag-write` spans).
    Barrier,
    /// An `OpenLoopSim` run (`faa`/`spin`/`rmw` job spans, `admit` instants).
    OpenLoop,
}

impl UnitKind {
    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Barrier => "barrier",
            UnitKind::OpenLoop => "open-loop",
        }
    }
}

/// Attribution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Analysis window as half-open cycles `[start, end)`. Defaults to the
    /// tight span of the unit's events (`min ts ..= max ts`).
    pub window: Option<(u64, u64)>,
    /// Number of processor lanes. Defaults to the lanes observed in the
    /// trace; pass a larger count to include fully-idle processors.
    pub procs: Option<usize>,
}

/// One attributed half-open cycle interval `[from, to)` on one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First cycle of the interval.
    pub from: u64,
    /// One past the last cycle of the interval.
    pub to: u64,
    /// Where those cycles went.
    pub bucket: Bucket,
}

impl Segment {
    /// Interval length in cycles.
    pub fn len(&self) -> u64 {
        self.to.saturating_sub(self.from)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.to <= self.from
    }
}

/// One processor lane's attribution: a disjoint tiling of the window.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneAttribution {
    /// The processor (trace `tid`).
    pub proc: u32,
    /// Sorted, disjoint segments tiling the window exactly.
    pub segments: Vec<Segment>,
    /// Cycles per bucket, indexed like [`Bucket::ALL`].
    pub totals: [u64; Bucket::COUNT],
}

impl LaneAttribution {
    /// Total attributed cycles (equals the window length when conserved).
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }
}

/// The attribution report for one traced unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// What the pass recognized the unit as.
    pub kind: UnitKind,
    /// The half-open analysis window `[start, end)` in cycles.
    pub window: (u64, u64),
    /// Per-processor lanes, ascending by `proc`.
    pub lanes: Vec<LaneAttribution>,
    /// Cycles per bucket summed over all lanes, indexed like [`Bucket::ALL`].
    pub totals: [u64; Bucket::COUNT],
}

impl Attribution {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.window.1 - self.window.0
    }

    /// Number of processor lanes.
    pub fn procs(&self) -> usize {
        self.lanes.len()
    }

    /// Total cycles in one bucket.
    pub fn bucket(&self, bucket: Bucket) -> u64 {
        self.totals[bucket.index()]
    }

    /// Fraction of all cycles in one bucket.
    pub fn share(&self, bucket: Bucket) -> f64 {
        let all = self.cycles().saturating_mul(self.procs() as u64);
        if all == 0 {
            0.0
        } else {
            self.bucket(bucket) as f64 / all as f64
        }
    }

    /// The conservation invariant: every lane's buckets sum exactly to the
    /// window length, so the grand total is `cycles × procs`.
    pub fn conserved(&self) -> bool {
        let cycles = self.cycles();
        self.lanes.iter().all(|lane| lane.total() == cycles)
            && self.totals.iter().sum::<u64>() == cycles.saturating_mul(self.procs() as u64)
    }

    /// The per-processor bucket table, with an `all` summary row.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["proc".to_string()];
        headers.extend(Bucket::ALL.iter().map(|b| b.name().to_string()));
        headers.push("total".to_string());
        let mut table = Table::new(headers).with_title(format!(
            "cycle attribution ({}, cycles {}..{}, {} procs)",
            self.kind.name(),
            self.window.0,
            self.window.1,
            self.procs()
        ));
        for lane in &self.lanes {
            let mut row = vec![format!("p{}", lane.proc)];
            row.extend(lane.totals.iter().map(u64::to_string));
            row.push(lane.total().to_string());
            table.add_row(row);
        }
        let mut row = vec!["all".to_string()];
        row.extend(self.totals.iter().map(u64::to_string));
        row.push(self.totals.iter().sum::<u64>().to_string());
        table.add_row(row);
        let mut row = vec!["share".to_string()];
        row.extend(Bucket::ALL.iter().map(|&b| fmt_percent(self.share(b))));
        row.push(fmt_percent(1.0));
        table.add_row(row);
        table
    }

    /// An ASCII lane×time heatmap: one row per processor, one column per
    /// `cycles/width` slice, each cell the glyph of the slice's dominant
    /// bucket. At most `max_lanes` lanes are drawn.
    pub fn heatmap(&self, width: usize, max_lanes: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        out.push_str(
            "lanes (W work · s spin-poll · b backoff · q queue-stall · n transit · . idle)\n",
        );
        let label_width = self
            .lanes
            .iter()
            .take(max_lanes)
            .map(|l| format!("p{}", l.proc).len())
            .max()
            .unwrap_or(2);
        for lane in self.lanes.iter().take(max_lanes) {
            let label = format!("p{}", lane.proc);
            out.push_str(&format!("  {label:>label_width$} |"));
            for col in 0..width {
                out.push(self.cell_glyph(lane, col, width));
            }
            out.push_str("|\n");
        }
        if self.lanes.len() > max_lanes {
            out.push_str(&format!(
                "  … ({} more lanes)\n",
                self.lanes.len() - max_lanes
            ));
        }
        out
    }

    /// The dominant bucket's glyph for one heatmap cell.
    fn cell_glyph(&self, lane: &LaneAttribution, col: usize, width: usize) -> char {
        let (w0, w1) = self.window;
        let len = (w1 - w0) as u128;
        let from = w0 + (len * col as u128 / width as u128) as u64;
        let to = w0 + (len * (col as u128 + 1) / width as u128) as u64;
        if to <= from {
            return ' ';
        }
        let mut overlap = [0u64; Bucket::COUNT];
        for seg in &lane.segments {
            let lo = seg.from.max(from);
            let hi = seg.to.min(to);
            if hi > lo {
                overlap[seg.bucket.index()] += hi - lo;
            }
        }
        // Ties break toward the earlier bucket in report order.
        let mut best = Bucket::Idle;
        let mut best_cycles = 0;
        for &bucket in &Bucket::ALL {
            if overlap[bucket.index()] > best_cycles {
                best = bucket;
                best_cycles = overlap[bucket.index()];
            }
        }
        if best_cycles == 0 {
            ' '
        } else {
            best.glyph()
        }
    }

    /// The report as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Value {
        let bucket_obj = |totals: &[u64; Bucket::COUNT]| {
            Value::Obj(
                Bucket::ALL
                    .iter()
                    .map(|&b| (b.name().to_string(), Value::Num(totals[b.index()] as f64)))
                    .collect(),
            )
        };
        Value::Obj(vec![
            ("kind".to_string(), Value::Str(self.kind.name().to_string())),
            (
                "window".to_string(),
                Value::Arr(vec![
                    Value::Num(self.window.0 as f64),
                    Value::Num(self.window.1 as f64),
                ]),
            ),
            ("cycles".to_string(), Value::Num(self.cycles() as f64)),
            ("procs".to_string(), Value::Num(self.procs() as f64)),
            ("conserved".to_string(), Value::Bool(self.conserved())),
            ("totals".to_string(), bucket_obj(&self.totals)),
            (
                "shares".to_string(),
                Value::Obj(
                    Bucket::ALL
                        .iter()
                        .map(|&b| (b.name().to_string(), Value::Num(self.share(b))))
                        .collect(),
                ),
            ),
            (
                "lanes".to_string(),
                Value::Arr(
                    self.lanes
                        .iter()
                        .map(|lane| {
                            Value::Obj(vec![
                                ("proc".to_string(), Value::Num(lane.proc as f64)),
                                ("buckets".to_string(), bucket_obj(&lane.totals)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A paired span on one lane, in cycles.
#[derive(Debug, Clone)]
pub(crate) struct Span {
    pub(crate) name: String,
    pub(crate) begin: u64,
    pub(crate) end: u64,
}

/// An instant marker on one lane, in cycles.
#[derive(Debug, Clone)]
pub(crate) struct Marker {
    pub(crate) name: String,
    pub(crate) ts: u64,
}

/// One lane's paired structure: spans plus instants, document order.
#[derive(Debug, Default)]
pub(crate) struct Lane {
    pub(crate) spans: Vec<Span>,
    pub(crate) markers: Vec<Marker>,
}

/// Runs the attribution pass over one unit's events.
///
/// Counter events never contribute lane structure (counter lanes share or
/// extend the processor `tid` space); only Begin/End/Instant events do.
///
/// # Errors
///
/// Returns a message when the unit holds no attributable events, mixes
/// barrier and open-loop vocabulary, or has unbalanced spans (e.g. a ring
/// that dropped its oldest events).
pub fn attribute(events: &[Event], opts: &Options) -> Result<Attribution, String> {
    let lanes = pair_lanes(events)?;
    let kind = detect_kind(&lanes)?;
    let window = match opts.window {
        Some((w0, w1)) if w1 > w0 => (w0, w1),
        Some(w) => return Err(format!("empty analysis window {w:?}")),
        None => derive_window(events).ok_or("no events to derive an analysis window from")?,
    };
    let procs = opts
        .procs
        .unwrap_or(0)
        .max(lanes.keys().next_back().map_or(0, |&t| t as usize + 1));
    let mut out_lanes = Vec::with_capacity(procs);
    let empty = Lane::default();
    for proc in 0..u32::try_from(procs).unwrap_or(u32::MAX) {
        let lane = lanes.get(&proc).unwrap_or(&empty);
        let segments = match kind {
            UnitKind::Barrier => barrier_lane(lane, window),
            UnitKind::OpenLoop => open_loop_lane(lane, window),
        };
        let mut totals = [0u64; Bucket::COUNT];
        for seg in &segments {
            totals[seg.bucket.index()] += seg.len();
        }
        out_lanes.push(LaneAttribution {
            proc,
            segments,
            totals,
        });
    }
    let mut totals = [0u64; Bucket::COUNT];
    for lane in &out_lanes {
        for (sum, cycles) in totals.iter_mut().zip(lane.totals.iter()) {
            *sum += cycles;
        }
    }
    let report = Attribution {
        kind,
        window,
        lanes: out_lanes,
        totals,
    };
    if !report.conserved() {
        return Err("attribution lost cycles: bucket sums do not tile the window".to_string());
    }
    Ok(report)
}

/// The tight `[min ts, max ts + 1)` window over all events.
fn derive_window(events: &[Event]) -> Option<(u64, u64)> {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for event in events {
        let ts = event.ts as u64;
        lo = lo.min(ts);
        hi = hi.max(ts);
    }
    if lo == u64::MAX {
        None
    } else {
        Some((lo, hi + 1))
    }
}

/// Groups data events by lane and pairs Begin/End spans via a name stack.
pub(crate) fn pair_lanes(events: &[Event]) -> Result<BTreeMap<u32, Lane>, String> {
    let mut lanes: BTreeMap<u32, Lane> = BTreeMap::new();
    let mut stacks: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    for event in events {
        let ts = event.ts as u64;
        match event.phase {
            Phase::Counter => {}
            // abs-lint: allow(determinism) -- Phase::Instant is the trace marker phase, not std::time
            Phase::Instant => lanes.entry(event.tid).or_default().markers.push(Marker {
                name: event.name.to_string(),
                ts,
            }),
            Phase::Begin => stacks.entry(event.tid).or_default().push(Span {
                name: event.name.to_string(),
                begin: ts,
                end: ts,
            }),
            Phase::End => {
                let open = stacks.entry(event.tid).or_default().pop();
                match open {
                    Some(mut span) if span.name == event.name => {
                        span.end = ts.max(span.begin);
                        lanes.entry(event.tid).or_default().spans.push(span);
                    }
                    Some(span) => {
                        return Err(format!(
                            "lane {}: End {:?} at {ts} closes open span {:?}",
                            event.tid, event.name, span.name
                        ))
                    }
                    None => {
                        return Err(format!(
                            "lane {}: End {:?} at {ts} without a Begin (truncated ring?)",
                            event.tid, event.name
                        ))
                    }
                }
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some(span) = stack.last() {
            return Err(format!(
                "lane {tid}: span {:?} opened at {} never closed",
                span.name, span.begin
            ));
        }
    }
    Ok(lanes)
}

/// Recognizes the unit's vocabulary.
fn detect_kind(lanes: &BTreeMap<u32, Lane>) -> Result<UnitKind, String> {
    let mut barrier = false;
    let mut open_loop = false;
    for lane in lanes.values() {
        for span in &lane.spans {
            barrier |= span.name == "barrier";
            open_loop |= OP_LABELS.contains(&span.name.as_str());
        }
        open_loop |= lane.markers.iter().any(|m| m.name == "admit");
    }
    match (barrier, open_loop) {
        (true, false) => Ok(UnitKind::Barrier),
        (false, true) => Ok(UnitKind::OpenLoop),
        (true, true) => Err("unit mixes barrier and open-loop events".to_string()),
        (false, false) => {
            Err("no attributable spans (expected barrier or open-loop events)".to_string())
        }
    }
}

/// Tiles `range` with `subs` (clamped, overlap-trimmed, sorted) and fills
/// every gap with `filler`. The output always covers `range` exactly.
fn carve(range: (u64, u64), mut subs: Vec<Segment>, filler: Bucket, out: &mut Vec<Segment>) {
    let (lo, hi) = range;
    subs.sort_by_key(|s| (s.from, s.to));
    let mut cursor = lo;
    for sub in subs {
        let from = sub.from.max(cursor);
        let to = sub.to.min(hi);
        if to <= from {
            continue;
        }
        if from > cursor {
            out.push(Segment {
                from: cursor,
                to: from,
                bucket: filler,
            });
        }
        out.push(Segment {
            from,
            to,
            bucket: sub.bucket,
        });
        cursor = to;
    }
    if cursor < hi {
        out.push(Segment {
            from: cursor,
            to: hi,
            bucket: filler,
        });
    }
}

/// Tiles the window around top-level occupancy intervals: `outer` fills
/// the gaps between tops, and each top is carved with its own subs over
/// an `inner` filler.
fn tile_lane(
    window: (u64, u64),
    mut tops: Vec<(u64, u64, Vec<Segment>)>,
    outer: Bucket,
    inner: Bucket,
) -> Vec<Segment> {
    let (w0, w1) = window;
    tops.sort_by_key(|&(from, to, _)| (from, to));
    let mut out = Vec::new();
    let mut cursor = w0;
    for (from, to, subs) in tops {
        let from = from.max(cursor);
        let to = to.min(w1);
        if to <= from {
            continue;
        }
        if from > cursor {
            out.push(Segment {
                from: cursor,
                to: from,
                bucket: outer,
            });
        }
        carve((from, to), subs, inner, &mut out);
        cursor = to;
    }
    if cursor < w1 {
        out.push(Segment {
            from: cursor,
            to: w1,
            bucket: outer,
        });
    }
    out
}

/// One barrier lane: `barrier` spans occupy `[arrival, done]` (closed; the
/// End cycle is the wake/last-poll cycle), carved with queue stalls
/// (`var`, `flag-write`, both closed), backoff waits (`backoff` spans,
/// half-open, plus post-`park` quiescence), over a spin-poll filler;
/// cycles outside the barrier are compute-phase work.
fn barrier_lane(lane: &Lane, window: (u64, u64)) -> Vec<Segment> {
    let mut tops = Vec::new();
    for top in lane.spans.iter().filter(|s| s.name == "barrier") {
        let range = (top.begin, top.end + 1);
        let mut subs = Vec::new();
        for span in &lane.spans {
            let bucket = match span.name.as_str() {
                "var" | "flag-write" => Bucket::QueueStall,
                "backoff" => Bucket::BackoffWait,
                _ => continue,
            };
            // Closed spans own their End (serve) cycle; backoff is half-open.
            let to = if span.name == "backoff" {
                span.end
            } else {
                span.end + 1
            };
            if span.begin < range.1 && to > range.0 {
                subs.push(Segment {
                    from: span.begin,
                    to,
                    bucket,
                });
            }
        }
        // A parked processor sleeps from the cycle after `park` until its
        // `wake` (which coincides with the barrier End cycle).
        for marker in lane.markers.iter().filter(|m| m.name == "park") {
            if marker.ts >= range.0 && marker.ts < range.1 {
                subs.push(Segment {
                    from: marker.ts + 1,
                    to: range.1,
                    bucket: Bucket::BackoffWait,
                });
            }
        }
        tops.push((range.0, range.1, subs));
    }
    tile_lane(window, tops, Bucket::Work, Bucket::SpinPoll)
}

/// One open-loop lane: job spans occupy `[admit, completion)` (half-open;
/// the completion cycle belongs to the successor job or to idle), carved
/// with backoff waits, post-win service work (`sync-win` instant), and
/// `rmw-read` transit cycles over a spin-poll (attempt) filler; cycles
/// outside any job are idle. Jobs flagged `truncated` were force-closed
/// at the horizon and extend through it, matching the engine's busy count.
fn open_loop_lane(lane: &Lane, window: (u64, u64)) -> Vec<Segment> {
    let truncated_at: Vec<u64> = lane
        .markers
        .iter()
        .filter(|m| m.name == "truncated")
        .map(|m| m.ts)
        .collect();
    let mut tops = Vec::new();
    for top in lane
        .spans
        .iter()
        .filter(|s| OP_LABELS.contains(&s.name.as_str()))
    {
        let end = if truncated_at.contains(&top.end) {
            top.end + 1
        } else {
            top.end
        };
        let range = (top.begin, end);
        if range.1 <= range.0 {
            continue;
        }
        let mut subs = Vec::new();
        for span in lane.spans.iter().filter(|s| s.name == "backoff") {
            if span.begin < range.1 && span.end > range.0 {
                subs.push(Segment {
                    from: span.begin,
                    to: span.end,
                    bucket: Bucket::BackoffWait,
                });
            }
        }
        for marker in &lane.markers {
            match marker.name.as_str() {
                // Service starts the cycle after the winning sync access.
                "sync-win" if marker.ts >= range.0 && marker.ts < range.1 => subs.push(Segment {
                    from: marker.ts + 1,
                    to: range.1,
                    bucket: Bucket::Work,
                }),
                "rmw-read" if marker.ts >= range.0 && marker.ts < range.1 => subs.push(Segment {
                    from: marker.ts,
                    to: marker.ts + 1,
                    bucket: Bucket::NetTransit,
                }),
                _ => {}
            }
        }
        tops.push((range.0, range.1, subs));
    }
    tile_lane(window, tops, Bucket::Idle, Bucket::SpinPoll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_obs::trace::{Ring, TraceSink};

    fn barrier_events() -> Vec<Event> {
        let mut ring = Ring::new(256);
        // p0: work 0..10, barrier [10, 30]: var [10,12], spin, backoff
        // [14,18), park@20 -> sleeps [21,31).
        ring.span_begin(0, 10, "barrier", &[]);
        ring.span_begin(0, 10, "var", &[]);
        ring.span_end(0, 12, "var", &[("accesses", 1.0), ("count", 1.0)]);
        ring.span_begin(0, 14, "backoff", &[("wait", 4.0)]);
        ring.span_end(0, 18, "backoff", &[]);
        ring.instant(0, 20, "park", &[]);
        ring.instant(0, 30, "wake", &[]);
        ring.span_end(0, 30, "barrier", &[]);
        // p1: the setter; barrier [15, 30]: var [15,16], flag-write [17,19].
        ring.span_begin(1, 15, "barrier", &[]);
        ring.span_begin(1, 15, "var", &[]);
        ring.span_end(1, 16, "var", &[("accesses", 1.0), ("count", 2.0)]);
        ring.span_begin(1, 17, "flag-write", &[]);
        ring.span_end(1, 19, "flag-write", &[]);
        ring.instant(1, 19, "flag-set", &[]);
        ring.span_end(1, 30, "barrier", &[]);
        ring.into_events()
    }

    #[test]
    fn barrier_attribution_tiles_and_conserves() {
        let events = barrier_events();
        let report = attribute(&events, &Options::default()).unwrap();
        assert_eq!(report.kind, UnitKind::Barrier);
        assert_eq!(report.window, (10, 31));
        assert_eq!(report.procs(), 2);
        assert!(report.conserved());
        // p0: var [10,13)=3q, spin [13,14)=1s, backoff [14,18)=4b,
        // spin [18,21)=2s... park@20 -> [21,31)=10b; spin residual 18..21=3s.
        let p0 = &report.lanes[0];
        assert_eq!(p0.totals[Bucket::QueueStall.index()], 3);
        assert_eq!(p0.totals[Bucket::BackoffWait.index()], 4 + 10);
        assert_eq!(p0.totals[Bucket::SpinPoll.index()], 1 + 3);
        assert_eq!(p0.totals[Bucket::Work.index()], 0);
        assert_eq!(p0.total(), 21);
        // p1: work [10,15)=5W, var [15,17)=2q, flag-write [17,20)=3q,
        // spin [20,31)=11s.
        let p1 = &report.lanes[1];
        assert_eq!(p1.totals[Bucket::Work.index()], 5);
        assert_eq!(p1.totals[Bucket::QueueStall.index()], 5);
        assert_eq!(p1.totals[Bucket::SpinPoll.index()], 11);
        assert_eq!(p1.total(), 21);
    }

    #[test]
    fn open_loop_attribution_tiles_and_conserves() {
        let mut ring = Ring::new(256);
        // p0: idle 0..5, job [5, 20): attempt@5 fails, backoff [6,10),
        // attempt@10 wins -> work [11,20). Completion cycle 20 idle.
        ring.instant(0, 5, "admit", &[("tenant", 0.0), ("wait", 0.0)]);
        ring.span_begin(0, 5, "faa", &[("tenant", 0.0)]);
        ring.span_begin(0, 6, "backoff", &[("wait", 4.0)]);
        ring.span_end(0, 10, "backoff", &[]);
        ring.instant(0, 10, "sync-win", &[("attempts", 1.0)]);
        ring.span_end(0, 20, "faa", &[]);
        // p1: rmw job [5, 24) truncated at the horizon 23: read@5,
        // cas wins @6 -> work [7, 24).
        ring.span_begin(1, 5, "rmw", &[("tenant", 1.0)]);
        ring.instant(1, 5, "rmw-read", &[]);
        ring.instant(1, 6, "sync-win", &[("attempts", 0.0)]);
        ring.instant(1, 23, "truncated", &[]);
        ring.span_end(1, 23, "rmw", &[]);
        let events = ring.into_events();
        let report = attribute(
            &events,
            &Options {
                window: Some((0, 24)),
                procs: None,
            },
        )
        .unwrap();
        assert_eq!(report.kind, UnitKind::OpenLoop);
        assert!(report.conserved());
        let p0 = &report.lanes[0];
        assert_eq!(p0.totals[Bucket::Idle.index()], 5 + 4); // 0..5 and 20..24
        assert_eq!(p0.totals[Bucket::SpinPoll.index()], 2); // attempts @5, @10
        assert_eq!(p0.totals[Bucket::BackoffWait.index()], 4);
        assert_eq!(p0.totals[Bucket::Work.index()], 9); // 11..20
        let p1 = &report.lanes[1];
        assert_eq!(p1.totals[Bucket::Idle.index()], 5);
        assert_eq!(p1.totals[Bucket::NetTransit.index()], 1);
        assert_eq!(p1.totals[Bucket::SpinPoll.index()], 1); // winning cas @6
        assert_eq!(p1.totals[Bucket::Work.index()], 17); // 7..24 (truncated)
        assert_eq!(p1.total(), 24);
    }

    #[test]
    fn explicit_procs_pads_idle_lanes() {
        let mut ring = Ring::new(16);
        ring.span_begin(0, 0, "faa", &[("tenant", 0.0)]);
        ring.span_end(0, 4, "faa", &[]);
        let report = attribute(
            &ring.into_events(),
            &Options {
                window: Some((0, 4)),
                procs: Some(3),
            },
        )
        .unwrap();
        assert_eq!(report.procs(), 3);
        assert_eq!(report.lanes[2].totals[Bucket::Idle.index()], 4);
        assert!(report.conserved());
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let mut ring = Ring::new(16);
        ring.span_end(0, 3, "barrier", &[]);
        let err = attribute(&ring.into_events(), &Options::default()).unwrap_err();
        assert!(err.contains("without a Begin"), "{err}");

        let mut ring = Ring::new(16);
        ring.span_begin(0, 3, "barrier", &[]);
        let err = attribute(&ring.into_events(), &Options::default()).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn unknown_vocabulary_is_rejected() {
        let mut ring = Ring::new(16);
        ring.counter(4, 1, "hot_queue", &[("depth", 2.0)]);
        let err = attribute(&ring.into_events(), &Options::default()).unwrap_err();
        assert!(err.contains("no attributable spans"), "{err}");
    }

    #[test]
    fn table_heatmap_and_json_render() {
        let report = attribute(&barrier_events(), &Options::default()).unwrap();
        let table = report.to_table().to_string();
        assert!(table.contains("spin_poll"));
        assert!(table.contains("share"));
        let map = report.heatmap(21, 8);
        assert!(map.contains("p0 |"));
        assert!(map.contains('b'));
        let json = report.to_json().render();
        assert!(json.contains("\"conserved\": true") || json.contains("\"conserved\":true"));
    }

    #[test]
    fn segments_tile_window_without_gaps() {
        let report = attribute(&barrier_events(), &Options::default()).unwrap();
        for lane in &report.lanes {
            let mut cursor = report.window.0;
            for seg in &lane.segments {
                assert_eq!(seg.from, cursor, "gap on lane {}", lane.proc);
                assert!(!seg.is_empty());
                cursor = seg.to;
            }
            assert_eq!(cursor, report.window.1);
        }
    }
}
