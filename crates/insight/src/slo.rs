//! Per-tenant SLO timelines for open-loop (`abs-load`) runs.
//!
//! The `fairness` exhibit's final tally can show *that* a tenant starved;
//! the timeline shows *when*: the run is split into equal windows and each
//! tenant gets a per-window completion count, admission count, mean queue
//! depth, and admission-wait quantiles — starvation appears as a tenant
//! whose completion sparkline flat-lines while its queue sparkline climbs.
//!
//! Inputs are the engine's own events: `admit` instants (args `tenant`,
//! `wait`), job spans (Begin args carry `tenant`; an End preceded by a
//! `truncated` instant was force-closed at the horizon and does not count
//! as a completion), and `tenantN_queue` counter samples (arg `jobs`).

use abs_exec::json::Value;
use abs_obs::trace::{Event, Phase};
use abs_sim::stats;
use abs_sim::table::{fmt_f64, Table};

use crate::attribution::OP_LABELS;

/// Glyph ramp for sparklines, dimmest first (mirrors `abs_obs::ascii`).
const RAMP: &[u8] = b" .:-=+*#%@";

/// One tenant × one time window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantWindow {
    /// Jobs admitted onto a processor in this window.
    pub admitted: u64,
    /// Jobs completed in this window.
    pub completed: u64,
    /// Sum and count of queue-depth samples in this window.
    pub queue_sum: f64,
    /// Number of queue-depth samples.
    pub queue_samples: u64,
    /// Admission waits of jobs admitted in this window.
    pub waits: Vec<f64>,
}

impl TenantWindow {
    /// Mean sampled queue depth in this window (0 when unsampled).
    pub fn mean_queue(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_sum / self.queue_samples as f64
        }
    }
}

/// One tenant's full timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSeries {
    /// The tenant index.
    pub tenant: usize,
    /// Total jobs admitted.
    pub admitted: u64,
    /// Total jobs completed (force-closed jobs excluded).
    pub completed: u64,
    /// Every admission wait, in admission order.
    pub waits: Vec<f64>,
    /// Per-window breakdown.
    pub windows: Vec<TenantWindow>,
}

impl TenantSeries {
    /// Median admission wait (nearest rank).
    pub fn p50_wait(&self) -> f64 {
        stats::p50(&self.waits)
    }

    /// 95th-percentile admission wait.
    pub fn p95_wait(&self) -> f64 {
        stats::p95(&self.waits)
    }

    /// 99th-percentile admission wait.
    pub fn p99_wait(&self) -> f64 {
        stats::p99(&self.waits)
    }
}

/// The per-tenant SLO timeline of one open-loop unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTimeline {
    /// The half-open cycle span `[start, end)` the windows cover.
    pub span: (u64, u64),
    /// Tenants, ascending by index; all hold the same window count.
    pub tenants: Vec<TenantSeries>,
}

impl SloTimeline {
    /// Number of time windows.
    pub fn windows(&self) -> usize {
        self.tenants.first().map_or(0, |t| t.windows.len())
    }

    /// The per-tenant summary table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "tenant",
            "admitted",
            "completed",
            "wait p50",
            "wait p95",
            "wait p99",
        ])
        .with_title(format!(
            "per-tenant SLO (cycles {}..{}, {} windows)",
            self.span.0,
            self.span.1,
            self.windows()
        ));
        for t in &self.tenants {
            table.add_row(vec![
                format!("t{}", t.tenant),
                t.admitted.to_string(),
                t.completed.to_string(),
                fmt_f64(t.p50_wait(), 1),
                fmt_f64(t.p95_wait(), 1),
                fmt_f64(t.p99_wait(), 1),
            ]);
        }
        table
    }

    /// Per-tenant sparklines: completions and mean queue depth per window,
    /// each scaled to its own maximum across all tenants.
    pub fn sparklines(&self) -> String {
        let max_done = self
            .tenants
            .iter()
            .flat_map(|t| t.windows.iter().map(|w| w.completed as f64))
            .fold(0.0f64, f64::max);
        let max_queue = self
            .tenants
            .iter()
            .flat_map(|t| t.windows.iter().map(TenantWindow::mean_queue))
            .fold(0.0f64, f64::max);
        let mut out = String::from("timeline (per window, dim→bright = low→high)\n");
        for t in &self.tenants {
            let done: String = t
                .windows
                .iter()
                .map(|w| ramp_glyph(w.completed as f64, max_done))
                .collect();
            let queue: String = t
                .windows
                .iter()
                .map(|w| ramp_glyph(w.mean_queue(), max_queue))
                .collect();
            out.push_str(&format!(
                "  t{} completions |{done}|  queue |{queue}|\n",
                t.tenant
            ));
        }
        out
    }

    /// The timeline as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "span".to_string(),
                Value::Arr(vec![
                    Value::Num(self.span.0 as f64),
                    Value::Num(self.span.1 as f64),
                ]),
            ),
            ("windows".to_string(), Value::Num(self.windows() as f64)),
            (
                "tenants".to_string(),
                Value::Arr(self.tenants.iter().map(tenant_json).collect()),
            ),
        ])
    }
}

fn ramp_glyph(value: f64, max: f64) -> char {
    if max <= 0.0 || value <= 0.0 {
        return RAMP[0] as char;
    }
    let idx = ((value / max) * (RAMP.len() - 1) as f64).ceil() as usize;
    RAMP[idx.min(RAMP.len() - 1)] as char
}

fn tenant_json(t: &TenantSeries) -> Value {
    let series = |f: &dyn Fn(&TenantWindow) -> Value| {
        Value::Arr(t.windows.iter().map(f).collect())
    };
    Value::Obj(vec![
        ("tenant".to_string(), Value::Num(t.tenant as f64)),
        ("admitted".to_string(), Value::Num(t.admitted as f64)),
        ("completed".to_string(), Value::Num(t.completed as f64)),
        (
            "wait".to_string(),
            Value::Obj(vec![
                ("p50".to_string(), Value::Num(t.p50_wait())),
                ("p95".to_string(), Value::Num(t.p95_wait())),
                ("p99".to_string(), Value::Num(t.p99_wait())),
            ]),
        ),
        (
            "per_window".to_string(),
            Value::Obj(vec![
                (
                    "admitted".to_string(),
                    series(&|w| Value::Num(w.admitted as f64)),
                ),
                (
                    "completed".to_string(),
                    series(&|w| Value::Num(w.completed as f64)),
                ),
                (
                    "mean_queue".to_string(),
                    series(&|w| Value::Num(w.mean_queue())),
                ),
            ]),
        ),
    ])
}

/// Builds the per-tenant SLO timeline of one open-loop unit over `windows`
/// equal time windows.
///
/// # Errors
///
/// Returns a message when the unit holds no open-loop events.
pub fn slo_timeline(events: &[Event], windows: usize) -> Result<SloTimeline, String> {
    let windows = windows.max(1);
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for event in events {
        let ts = event.ts as u64;
        lo = lo.min(ts);
        hi = hi.max(ts);
    }
    if lo == u64::MAX {
        return Err("no events to build a timeline from".to_string());
    }
    let span = (lo, hi + 1);
    let window_of = |ts: u64| -> usize {
        (((ts - span.0) as u128 * windows as u128 / (span.1 - span.0) as u128) as usize)
            .min(windows - 1)
    };
    let mut tenants: Vec<TenantSeries> = Vec::new();
    let ensure = |tenants: &mut Vec<TenantSeries>, t: usize| {
        while tenants.len() <= t {
            tenants.push(TenantSeries {
                tenant: tenants.len(),
                admitted: 0,
                completed: 0,
                waits: Vec::new(),
                windows: vec![TenantWindow::default(); windows],
            });
        }
    };
    // Per-lane open-job tenant and pending force-close flag.
    let mut lane_tenant: Vec<Option<usize>> = Vec::new();
    let mut lane_truncated: Vec<bool> = Vec::new();
    let mut saw_open_loop = false;
    for event in events {
        let ts = event.ts as u64;
        let lane = event.tid as usize;
        if lane >= lane_tenant.len() {
            lane_tenant.resize(lane + 1, None);
            lane_truncated.resize(lane + 1, false);
        }
        let arg = |key: &str| {
            event
                .args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
        };
        match event.phase {
            // abs-lint: allow(determinism) -- Phase::Instant is the trace marker phase, not std::time
            Phase::Instant if event.name == "admit" => {
                saw_open_loop = true;
                let tenant = arg("tenant").unwrap_or(0.0) as usize;
                let wait = arg("wait").unwrap_or(0.0);
                ensure(&mut tenants, tenant);
                let w = window_of(ts);
                tenants[tenant].admitted += 1;
                tenants[tenant].waits.push(wait);
                tenants[tenant].windows[w].admitted += 1;
                tenants[tenant].windows[w].waits.push(wait);
            }
            // abs-lint: allow(determinism) -- Phase::Instant is the trace marker phase, not std::time
            Phase::Instant if event.name == "truncated" => lane_truncated[lane] = true,
            Phase::Begin if OP_LABELS.contains(&event.name.as_ref()) => {
                saw_open_loop = true;
                lane_tenant[lane] = arg("tenant").map(|t| t as usize);
            }
            Phase::End if OP_LABELS.contains(&event.name.as_ref()) => {
                let truncated = std::mem::replace(&mut lane_truncated[lane], false);
                if let Some(tenant) = lane_tenant[lane].take() {
                    if !truncated {
                        ensure(&mut tenants, tenant);
                        tenants[tenant].completed += 1;
                        tenants[tenant].windows[window_of(ts)].completed += 1;
                    }
                }
            }
            Phase::Counter => {
                if let Some(t) = event
                    .name
                    .strip_prefix("tenant")
                    .and_then(|rest| rest.strip_suffix("_queue"))
                    .and_then(|idx| idx.parse::<usize>().ok())
                {
                    saw_open_loop = true;
                    ensure(&mut tenants, t);
                    let w = &mut tenants[t].windows[window_of(ts)];
                    w.queue_sum += arg("jobs").unwrap_or(0.0);
                    w.queue_samples += 1;
                }
            }
            _ => {}
        }
    }
    if !saw_open_loop {
        return Err("no open-loop events (admit/job spans/tenant queues) in unit".to_string());
    }
    Ok(SloTimeline { span, tenants })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_obs::trace::{Ring, TraceSink};

    fn two_tenant_unit() -> Vec<Event> {
        let mut ring = Ring::new(256);
        // Tenant 0 completes early; tenant 1 queues up and gets truncated.
        ring.instant(0, 0, "admit", &[("tenant", 0.0), ("wait", 0.0)]);
        ring.span_begin(0, 0, "faa", &[("tenant", 0.0)]);
        ring.span_end(0, 10, "faa", &[]);
        ring.counter(0, 10, "tenant1_queue", &[("jobs", 4.0)]);
        ring.instant(1, 50, "admit", &[("tenant", 1.0), ("wait", 30.0)]);
        ring.span_begin(1, 50, "rmw", &[("tenant", 1.0)]);
        ring.instant(1, 99, "truncated", &[]);
        ring.span_end(1, 99, "rmw", &[]);
        ring.into_events()
    }

    #[test]
    fn builds_timeline() {
        let slo = slo_timeline(&two_tenant_unit(), 4).unwrap();
        assert_eq!(slo.span, (0, 100));
        assert_eq!(slo.windows(), 4);
        assert_eq!(slo.tenants.len(), 2);
        let t0 = &slo.tenants[0];
        assert_eq!((t0.admitted, t0.completed), (1, 1));
        assert_eq!(t0.windows[0].completed, 1); // done @10 -> window 0
        let t1 = &slo.tenants[1];
        assert_eq!((t1.admitted, t1.completed), (1, 0)); // truncated
        assert_eq!(t1.p95_wait(), 30.0);
        assert_eq!(t1.windows[2].admitted, 1); // @50 of 100 -> window 2
        assert_eq!(t1.windows[0].queue_samples, 1);
        assert_eq!(t1.windows[0].mean_queue(), 4.0);
    }

    #[test]
    fn renders() {
        let slo = slo_timeline(&two_tenant_unit(), 4).unwrap();
        assert!(slo.to_table().to_string().contains("t1"));
        let spark = slo.sparklines();
        assert!(spark.contains("t0 completions"));
        assert!(slo.to_json().render().contains("per_window"));
    }

    #[test]
    fn non_open_loop_is_rejected() {
        let mut ring = Ring::new(8);
        ring.span_begin(0, 0, "barrier", &[]);
        ring.span_end(0, 5, "barrier", &[]);
        assert!(slo_timeline(&ring.into_events(), 4)
            .unwrap_err()
            .contains("no open-loop"));
    }
}
