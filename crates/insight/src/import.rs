//! Chrome-trace JSON import: the inverse of `abs_obs::chrome` export,
//! close enough for analysis.
//!
//! `repro --trace` writes one Chrome document holding several *units*
//! (traced episodes), each under its own `pid` (1-based; `pid` 0 is the
//! reserved wall-clock lane group, which analysis skips). This module
//! reads such a document back into `(unit name, events)` pairs shaped
//! like `abs_bench`'s `sim_trace` output, so the analysis passes run the
//! same way on a live ring or a file from disk.
//!
//! One lossy corner: [`abs_obs::trace::Event`] argument keys are
//! `&'static str`, so imported keys are interned against the fixed
//! vocabulary the simulators emit ([`ARG_KEYS`]); rows with unknown
//! argument keys keep the event but drop that argument. Analysis only
//! reads known keys, so nothing it needs is lost.

use std::collections::BTreeMap;

use abs_exec::json::Value;
use abs_obs::chrome::WALL_PID;
use abs_obs::trace::{Event, Phase};

/// Every argument key the instrumented simulators emit. Imported args
/// with other keys are dropped (see module docs).
pub const ARG_KEYS: [&str; 16] = [
    "accesses",
    "attempts",
    "collisions",
    "count",
    "depth",
    "fanout",
    "held",
    "jobs",
    "polls",
    "procs",
    "tenant",
    "throttle",
    "wait",
    "waiters",
    "waiting",
    "wins",
];

/// Clamps a Chrome-trace id (a JSON number) into the `u32` lane space:
/// negative values floor at 0, oversized ones saturate at `u32::MAX`.
fn id_u32(v: f64) -> u32 {
    u32::try_from(v as u64).unwrap_or(u32::MAX)
}

fn intern(key: &str) -> Option<&'static str> {
    ARG_KEYS.iter().find(|&&k| k == key).copied()
}

/// Parses a rendered Chrome trace document back into `(unit name, events)`
/// pairs, ascending by `pid` (the exporter's unit order). Wall-clock rows
/// (`pid` == [`WALL_PID`]) are skipped.
///
/// # Errors
///
/// Returns a message when the document is not a Chrome trace (`traceEvents`
/// missing), a row is malformed, or a phase is unknown.
pub fn import_chrome(doc: &Value) -> Result<Vec<(String, Vec<Event>)>, String> {
    let rows = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array (not a Chrome trace document?)".to_string())?;
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    let mut units: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field_f64 = |key: &str| {
            row.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("row {i}: missing numeric {key:?}"))
        };
        let ph = row
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing ph"))?;
        let pid = id_u32(field_f64("pid")?);
        if ph == "M" {
            if row.get("name").and_then(Value::as_str) == Some("process_name") {
                if let Some(name) = row
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                {
                    names.insert(pid, name.to_string());
                }
            }
            continue;
        }
        if pid == WALL_PID {
            continue;
        }
        let phase = match ph {
            "B" => Phase::Begin,
            "E" => Phase::End,
            // abs-lint: allow(determinism) -- Phase::Instant is the trace marker phase, not std::time
            "i" => Phase::Instant,
            "C" => Phase::Counter,
            other => return Err(format!("row {i}: unknown phase {other:?}")),
        };
        let name = row
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("row {i}: missing name"))?
            .to_string();
        let mut event = Event::sim(id_u32(field_f64("tid")?), field_f64("ts")?, phase, name);
        if let Some(Value::Obj(args)) = row.get("args") {
            for (key, value) in args {
                if let (Some(key), Some(value)) = (intern(key), value.as_f64()) {
                    event.args.push((key, value));
                }
            }
        }
        units.entry(pid).or_default().push(event);
    }
    Ok(units
        .into_iter()
        .map(|(pid, events)| {
            let name = names.remove(&pid).unwrap_or_else(|| format!("unit {pid}"));
            (name, events)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_obs::chrome::ChromeTrace;
    use abs_obs::trace::{Ring, TraceSink};

    fn round_trip_doc() -> Value {
        let mut ring = Ring::new(64);
        ring.span_begin(0, 10, "barrier", &[]);
        ring.span_begin(0, 10, "var", &[("accesses", 1.0), ("count", 1.0)]);
        ring.span_end(0, 12, "var", &[]);
        ring.instant(0, 13, "poll-miss", &[("polls", 1.0)]);
        ring.counter(1, 12, "var_queue", &[("waiters", 1.0)]);
        ring.span_end(0, 20, "barrier", &[]);
        let mut trace = ChromeTrace::new();
        trace.add_unit(1, "A=0 without backoff", ring.into_events());
        trace.to_value()
    }

    #[test]
    fn round_trips_exported_units() {
        let doc = round_trip_doc();
        let units = import_chrome(&doc).unwrap();
        assert_eq!(units.len(), 1);
        let (name, events) = &units[0];
        assert_eq!(name, "A=0 without backoff");
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[1].args, vec![("accesses", 1.0), ("count", 1.0)]);
        assert_eq!(events[4].phase, Phase::Counter);
        assert_eq!(events[4].args, vec![("waiters", 1.0)]);
    }

    #[test]
    fn skips_wall_lanes_and_unknown_args() {
        let doc = Value::parse(
            r#"{"traceEvents": [
                {"name": "exec", "cat": "wall", "ph": "B", "ts": 1, "pid": 0, "tid": 0},
                {"name": "x", "cat": "sim", "ph": "i", "ts": 2, "pid": 3, "tid": 1,
                 "args": {"tenant": 2, "mystery": 9}}
            ]}"#,
        )
        .unwrap();
        let units = import_chrome(&doc).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].0, "unit 3");
        assert_eq!(units[0].1[0].args, vec![("tenant", 2.0)]);
    }

    #[test]
    fn rejects_non_trace_documents() {
        let doc = Value::parse(r#"{"runner": "kernel_speedup", "points": []}"#).unwrap();
        assert!(import_chrome(&doc).unwrap_err().contains("traceEvents"));
        let doc = Value::parse(r#"{"traceEvents": [{"ph": "Z", "pid": 1}]}"#).unwrap();
        assert!(import_chrome(&doc).unwrap_err().contains("unknown phase"));
    }
}
