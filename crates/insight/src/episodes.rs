//! Barrier episode extraction: which processor's arrival/wakeup chain
//! bounded the episode, and how barrier durations distribute.
//!
//! A traced `BarrierSim` unit is one episode: every processor arrives
//! (opens its `barrier` span), increments the counter (its `var` span),
//! and the last arriver — the *setter* — writes the release flag (its
//! `flag-write` span, then the `flag-set` instant). The episode's critical
//! path is therefore the setter's chain:
//!
//! ```text
//! setter arrival ──var stall──▶ counter win ──flag-write stall──▶
//! flag set ──wake/poll tail──▶ episode completion
//! ```
//!
//! Everything here is read back from the spans [`crate::attribution`]
//! pairs; per-processor barrier durations feed `abs_sim::stats` quantiles.

use abs_exec::json::Value;
use abs_obs::trace::Event;
use abs_sim::stats;
use abs_sim::table::{fmt_f64, Table};

use crate::attribution::pair_lanes;

/// A processor's arrival at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The processor (trace `tid`).
    pub proc: u32,
    /// Arrival cycle (the `barrier` span Begin).
    pub ts: u64,
}

/// The critical path of one barrier episode: the setter's chain from
/// arrival to episode completion, in cycles per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPath {
    /// The setter's arrival cycle.
    pub arrival: u64,
    /// Cycles the setter's counter increment waited for arbitration
    /// (its `var` span, closed — includes the serve cycle).
    pub var_stall: u64,
    /// Cycles from the counter win to the flag write landing.
    pub flag_stall: u64,
    /// Cycles from flag set to the last processor leaving the barrier
    /// (wake-up latency and final polls).
    pub tail: u64,
}

/// One extracted barrier episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Number of participating processors (lanes with a `barrier` span).
    pub procs: usize,
    /// Earliest arrival.
    pub first_arrival: Arrival,
    /// Latest arrival (ties break toward the lower processor id).
    pub last_arrival: Arrival,
    /// The processor whose counter increment saw the full count and
    /// therefore wrote the release flag.
    pub setter: u32,
    /// Cycle the release flag was set.
    pub flag_set_at: u64,
    /// Cycle the last processor left the barrier.
    pub completion: u64,
    /// The last processor to leave.
    pub last_finisher: u32,
    /// Processors that parked (gave up polling) before release.
    pub parked: usize,
    /// Per-processor barrier residency in cycles (arrival through exit).
    pub durations: Vec<f64>,
    /// The setter's bounding chain.
    pub critical: CriticalPath,
}

impl Episode {
    /// Median barrier residency.
    pub fn p50(&self) -> f64 {
        stats::p50(&self.durations)
    }

    /// 95th-percentile barrier residency.
    pub fn p95(&self) -> f64 {
        stats::p95(&self.durations)
    }

    /// 99th-percentile barrier residency.
    pub fn p99(&self) -> f64 {
        stats::p99(&self.durations)
    }

    /// A two-line text summary of the episode and its critical path.
    pub fn summary(&self) -> String {
        format!(
            "episode: {} procs, arrivals {}..{} (last p{}), flag set @{} by p{}, \
             done @{} (last p{}), {} parked\n\
             critical path: p{} arrival @{} + var stall {} + flag stall {} + tail {} \
             = completion @{}; residency p50/p95/p99 = {}/{}/{}",
            self.procs,
            self.first_arrival.ts,
            self.last_arrival.ts,
            self.last_arrival.proc,
            self.flag_set_at,
            self.setter,
            self.completion,
            self.last_finisher,
            self.parked,
            self.setter,
            self.critical.arrival,
            self.critical.var_stall,
            self.critical.flag_stall,
            self.critical.tail,
            self.completion,
            fmt_f64(self.p50(), 1),
            fmt_f64(self.p95(), 1),
            fmt_f64(self.p99(), 1),
        )
    }

    /// The episode as a one-row table (stacked exhibits append more rows).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "procs",
            "last arrival",
            "setter",
            "flag set",
            "completion",
            "parked",
            "p50",
            "p95",
            "p99",
        ])
        .with_title("barrier episode");
        table.add_row(vec![
            self.procs.to_string(),
            format!("p{}@{}", self.last_arrival.proc, self.last_arrival.ts),
            format!("p{}", self.setter),
            self.flag_set_at.to_string(),
            self.completion.to_string(),
            self.parked.to_string(),
            fmt_f64(self.p50(), 1),
            fmt_f64(self.p95(), 1),
            fmt_f64(self.p99(), 1),
        ]);
        table
    }

    /// The episode as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("procs".to_string(), Value::Num(self.procs as f64)),
            (
                "first_arrival".to_string(),
                arrival_json(self.first_arrival),
            ),
            ("last_arrival".to_string(), arrival_json(self.last_arrival)),
            ("setter".to_string(), Value::Num(self.setter as f64)),
            ("flag_set_at".to_string(), Value::Num(self.flag_set_at as f64)),
            ("completion".to_string(), Value::Num(self.completion as f64)),
            (
                "last_finisher".to_string(),
                Value::Num(self.last_finisher as f64),
            ),
            ("parked".to_string(), Value::Num(self.parked as f64)),
            (
                "residency".to_string(),
                Value::Obj(vec![
                    ("p50".to_string(), Value::Num(self.p50())),
                    ("p95".to_string(), Value::Num(self.p95())),
                    ("p99".to_string(), Value::Num(self.p99())),
                ]),
            ),
            (
                "critical_path".to_string(),
                Value::Obj(vec![
                    (
                        "arrival".to_string(),
                        Value::Num(self.critical.arrival as f64),
                    ),
                    (
                        "var_stall".to_string(),
                        Value::Num(self.critical.var_stall as f64),
                    ),
                    (
                        "flag_stall".to_string(),
                        Value::Num(self.critical.flag_stall as f64),
                    ),
                    ("tail".to_string(), Value::Num(self.critical.tail as f64)),
                ]),
            ),
        ])
    }
}

fn arrival_json(a: Arrival) -> Value {
    Value::Obj(vec![
        ("proc".to_string(), Value::Num(a.proc as f64)),
        ("ts".to_string(), Value::Num(a.ts as f64)),
    ])
}

/// Extracts the barrier episode from one traced unit's events.
///
/// # Errors
///
/// Returns a message when the unit has no `barrier` spans, unbalanced
/// spans, or no identifiable setter (`flag-set` instant).
pub fn episode(events: &[Event]) -> Result<Episode, String> {
    let lanes = pair_lanes(events)?;
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut exits: Vec<Arrival> = Vec::new();
    let mut durations = Vec::new();
    let mut parked = 0usize;
    let mut setter: Option<(u32, u64)> = None;
    for (&tid, lane) in &lanes {
        for span in lane.spans.iter().filter(|s| s.name == "barrier") {
            arrivals.push(Arrival {
                proc: tid,
                ts: span.begin,
            });
            exits.push(Arrival {
                proc: tid,
                ts: span.end,
            });
            durations.push((span.end - span.begin + 1) as f64);
        }
        parked += lane.markers.iter().filter(|m| m.name == "park").count();
        if let Some(m) = lane.markers.iter().find(|m| m.name == "flag-set") {
            setter = Some((tid, m.ts));
        }
    }
    if arrivals.is_empty() {
        return Err("no barrier spans in unit".to_string());
    }
    let (setter, flag_set_at) =
        setter.ok_or("no flag-set instant in unit (not a complete barrier episode?)")?;
    // min_by_key/max_by_key tie-break: first (lowest proc) for min, last
    // for max — force the lowest proc on ties explicitly.
    let first_arrival = arrivals
        .iter()
        .copied()
        .min_by_key(|a| (a.ts, a.proc))
        .unwrap_or(arrivals[0]);
    let last_arrival = arrivals
        .iter()
        .copied()
        .max_by_key(|a| (a.ts, u32::MAX - a.proc))
        .unwrap_or(arrivals[0]);
    let finish = exits
        .iter()
        .copied()
        .max_by_key(|a| (a.ts, u32::MAX - a.proc))
        .unwrap_or(exits[0]);
    let setter_lane = lanes.get(&setter).ok_or("setter lane missing")?;
    let setter_arrival = setter_lane
        .spans
        .iter()
        .find(|s| s.name == "barrier")
        .map(|s| s.begin)
        .ok_or("setter has no barrier span")?;
    let var_win = setter_lane
        .spans
        .iter()
        .find(|s| s.name == "var")
        .map(|s| s.end)
        .unwrap_or(setter_arrival);
    Ok(Episode {
        procs: arrivals.len(),
        first_arrival,
        last_arrival,
        setter,
        flag_set_at,
        completion: finish.ts,
        last_finisher: finish.proc,
        parked,
        durations,
        critical: CriticalPath {
            arrival: setter_arrival,
            var_stall: var_win - setter_arrival + 1,
            flag_stall: flag_set_at.saturating_sub(var_win),
            tail: finish.ts.saturating_sub(flag_set_at),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abs_obs::trace::{Ring, TraceSink};

    fn two_proc_episode() -> Vec<Event> {
        let mut ring = Ring::new(64);
        ring.span_begin(0, 10, "barrier", &[]);
        ring.span_begin(0, 10, "var", &[]);
        ring.span_end(0, 12, "var", &[("accesses", 1.0), ("count", 1.0)]);
        ring.instant(0, 20, "park", &[]);
        ring.instant(0, 30, "wake", &[]);
        ring.span_end(0, 30, "barrier", &[]);
        ring.span_begin(1, 15, "barrier", &[]);
        ring.span_begin(1, 15, "var", &[]);
        ring.span_end(1, 16, "var", &[("accesses", 1.0), ("count", 2.0)]);
        ring.span_begin(1, 17, "flag-write", &[]);
        ring.span_end(1, 19, "flag-write", &[]);
        ring.instant(1, 19, "flag-set", &[]);
        ring.span_end(1, 28, "barrier", &[]);
        ring.into_events()
    }

    #[test]
    fn extracts_episode_structure() {
        let ep = episode(&two_proc_episode()).unwrap();
        assert_eq!(ep.procs, 2);
        assert_eq!(ep.first_arrival, Arrival { proc: 0, ts: 10 });
        assert_eq!(ep.last_arrival, Arrival { proc: 1, ts: 15 });
        assert_eq!(ep.setter, 1);
        assert_eq!(ep.flag_set_at, 19);
        assert_eq!(ep.completion, 30);
        assert_eq!(ep.last_finisher, 0);
        assert_eq!(ep.parked, 1);
        assert_eq!(ep.critical.arrival, 15);
        assert_eq!(ep.critical.var_stall, 2); // var [15,16] closed
        assert_eq!(ep.critical.flag_stall, 3); // 16 -> 19
        assert_eq!(ep.critical.tail, 11); // 19 -> 30
        // Residency: p0 = 21, p1 = 14; nearest-rank p50 of two is the lower.
        assert_eq!(ep.p50(), 14.0);
        assert_eq!(ep.p99(), 21.0);
    }

    #[test]
    fn renders() {
        let ep = episode(&two_proc_episode()).unwrap();
        assert!(ep.summary().contains("flag set @19 by p1"));
        assert!(ep.to_table().to_string().contains("p1@15"));
        assert!(ep.to_json().render().contains("critical_path"));
    }

    #[test]
    fn missing_flag_set_is_rejected() {
        let mut ring = Ring::new(8);
        ring.span_begin(0, 0, "barrier", &[]);
        ring.span_end(0, 5, "barrier", &[]);
        assert!(episode(&ring.into_events())
            .unwrap_err()
            .contains("flag-set"));
    }

    #[test]
    fn non_barrier_unit_is_rejected() {
        let mut ring = Ring::new(8);
        ring.span_begin(0, 0, "faa", &[]);
        ring.span_end(0, 5, "faa", &[]);
        assert!(episode(&ring.into_events())
            .unwrap_err()
            .contains("no barrier spans"));
    }
}
