//! The attribution conservation law, as a property over the simulators.
//!
//! Cycle attribution is only trustworthy if it is *total*: every
//! processor-cycle of the analysis window lands in exactly one bucket, so
//! per-processor buckets sum to the window length and the aggregate to
//! `cycles x procs`. These properties drive [`abs_insight::attribution`]
//! over randomly configured [`BarrierSim`] and [`OpenLoopSim`] episodes
//! under **both** kernels and check:
//!
//! * the conservation invariant itself (`Attribution::conserved`),
//! * agreement with the engine's own accounting (the idle bucket equals
//!   `idle_proc_cycles`, the rest equals `busy_proc_cycles`),
//! * byte-identical analysis JSON across kernels (the analysis is a pure
//!   function of the trace, and the kernels trace identically).
//!
//! Driven by the in-tree `forall!` framework: a failing case panics with
//! the master seed; replay with `ABS_CHECK_SEED=<seed>`.

use abs_core::{BackoffPolicy, BarrierConfig, BarrierSim};
use abs_insight::analyze::analyze_unit;
use abs_insight::attribution::{attribute, Bucket, Options, UnitKind};
use abs_load::arrival::Arrival;
use abs_load::engine::{LoadConfig, OpenLoopSim};
use abs_load::tenant::{OpMix, Tenant};
use abs_obs::trace::Ring;
use abs_sim::check::{self, Config};
use abs_sim::forall;
use abs_sim::kernel::Kernel;
use abs_trace::sched::SchedKind;

/// The policy grid the properties draw from (mirrors the figures').
fn policies() -> [BackoffPolicy; 5] {
    BackoffPolicy::figure_policies()
}

#[test]
fn barrier_attribution_conserves_every_cycle() {
    forall!(Config::with_cases(32), (
        seed in check::any_u64(),
        n in check::usize_in(2..48),
        a in check::u64_in(0..=1200),
        policy_idx in check::usize_in(0..5),
    ) {
        let sim = BarrierSim::new(BarrierConfig::new(n, a), policies()[policy_idx]);
        let mut ring = Ring::default();
        let run = sim.run_traced(seed, &mut ring);
        let events = ring.into_events();

        let attribution = attribute(&events, &Options::default()).expect("barrier trace attributes");
        assert_eq!(attribution.kind, UnitKind::Barrier);
        assert!(attribution.conserved(), "conservation violated: {attribution:?}");
        assert_eq!(attribution.procs(), n);
        // The derived window covers the run through its completion cycle.
        assert_eq!(attribution.window.1, run.completion() + 1);
        // Per-processor totals each cover the whole window.
        let cycles = attribution.cycles();
        for lane in &attribution.lanes {
            assert_eq!(lane.total(), cycles, "lane p{} leaks cycles", lane.proc);
        }
    });
}

#[test]
fn barrier_analysis_is_kernel_invariant() {
    forall!(Config::with_cases(16), (
        seed in check::any_u64(),
        n in check::usize_in(2..32),
        a in check::u64_in(0..=800),
        policy_idx in check::usize_in(0..5),
    ) {
        let sim = BarrierSim::new(BarrierConfig::new(n, a), policies()[policy_idx]);
        let mut reports = Vec::new();
        for kernel in Kernel::ALL {
            let mut ring = Ring::default();
            sim.run_traced_with(seed, &mut ring, kernel);
            let report = analyze_unit(&ring.into_events(), &Options::default())
                .expect("barrier trace analyzes");
            reports.push(report.attribution.to_json().render_pretty());
        }
        assert_eq!(reports[0], reports[1], "analysis differs across kernels");
    });
}

#[test]
fn open_loop_attribution_matches_engine_accounting() {
    forall!(Config::with_cases(24), (
        seed in check::any_u64(),
        procs in check::usize_in(1..12),
        gap in check::u64_in(2..=24),
        work in check::u64_in(1..=30),
        policy_idx in check::usize_in(0..5),
        sched_idx in check::usize_in(0..3),
    ) {
        let horizon = 2_000u64;
        let sim = OpenLoopSim::new(
            LoadConfig {
                procs,
                vars: 2,
                horizon,
                sched: SchedKind::ALL[sched_idx],
                backoff: policies()[policy_idx],
                ..LoadConfig::default()
            },
            vec![
                Tenant {
                    weight: 2,
                    arrival: Arrival::poisson(gap as f64),
                    op_mix: OpMix::EVEN,
                    work,
                },
                Tenant {
                    weight: 1,
                    arrival: Arrival::fixed(gap * 2),
                    op_mix: OpMix::FAA,
                    work: work + 2,
                },
            ],
        );
        let mut per_kernel = Vec::new();
        for kernel in Kernel::ALL {
            let mut ring = Ring::default();
            let outcome = sim.run_traced_with(seed, &mut ring, kernel);
            let events = ring.into_events();

            // The engine tallies processor state on cycles 1..=horizon, so
            // the cross-check window is exactly (1, horizon + 1).
            let opts = Options {
                window: Some((1, horizon + 1)),
                procs: Some(procs),
            };
            let attribution = attribute(&events, &opts).expect("open-loop trace attributes");
            assert_eq!(attribution.kind, UnitKind::OpenLoop);
            assert!(attribution.conserved(), "conservation violated");
            assert_eq!(
                attribution.cycles() * attribution.procs() as u64,
                horizon * procs as u64,
                "window must cover the whole run"
            );

            // Idle bucket == the engine's own idle_proc_cycles; everything
            // else == busy_proc_cycles. The attribution re-derives the
            // engine's accounting from the trace alone.
            assert_eq!(attribution.bucket(Bucket::Idle), outcome.idle_proc_cycles);
            let busy: u64 = [
                Bucket::Work,
                Bucket::SpinPoll,
                Bucket::BackoffWait,
                Bucket::QueueStall,
                Bucket::NetTransit,
            ]
            .iter()
            .map(|&b| attribution.bucket(b))
            .sum();
            assert_eq!(busy, outcome.busy_proc_cycles);

            per_kernel.push(attribution.to_json().render_pretty());
        }
        assert_eq!(per_kernel[0], per_kernel[1], "analysis differs across kernels");
    });
}

#[test]
fn backoff_converts_spin_poll_into_backoff_wait() {
    // The paper's central attribution claim at the fig-4 acceptance point:
    // under exponential backoff the spin-poll share collapses and a
    // backoff-wait share appears in its place.
    let config = BarrierConfig::new(64, 1000);
    let mut shares = Vec::new();
    for policy in [BackoffPolicy::None, BackoffPolicy::exponential(8)] {
        let sim = BarrierSim::new(config, policy);
        let mut ring = Ring::default();
        sim.run_traced(42, &mut ring);
        let a = attribute(&ring.into_events(), &Options::default()).unwrap();
        assert!(a.conserved());
        shares.push((a.share(Bucket::SpinPoll), a.share(Bucket::BackoffWait)));
    }
    let (spin_none, wait_none) = shares[0];
    let (spin_exp, wait_exp) = shares[1];
    assert_eq!(wait_none, 0.0, "no backoff policy, no backoff-wait cycles");
    assert!(
        spin_exp < spin_none / 4.0,
        "exp-8 should collapse the spin-poll share: {spin_exp} vs {spin_none}"
    );
    assert!(wait_exp > 0.0, "exp-8 must show backoff-wait cycles");
}
