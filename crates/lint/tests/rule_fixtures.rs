//! Per-rule positive/negative fixtures for the semantic rule families.
//!
//! Each fixture under `tests/fixtures/` is a real source file (excluded
//! from the workspace lint walk by the `fixtures` directory rule): the
//! positive one must trip its rule, the negative one must scan clean —
//! so a rule that goes blind *or* trigger-happy fails this suite before
//! it ever gates CI.

use std::collections::BTreeSet;

use abs_lint::callgraph::CallGraph;
use abs_lint::rules::{Rule, Severity, SourcePolicy};
use abs_lint::sem::{self, ParsedFile};

fn scan(rel: &str, src: &str, policy: SourcePolicy) -> Vec<abs_lint::Finding> {
    let pf = ParsedFile::parse(rel, src, policy);
    sem::scan_file(&pf, &BTreeSet::new())
}

fn count(findings: &[abs_lint::Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn arith_positive_fixture_trips_every_site() {
    let src = include_str!("fixtures/arith_positive.rs");
    let findings = scan("fixtures/arith_positive.rs", src, SourcePolicy::sim_crate());
    // One truncating cast, two compound assignments, one binary `+`, one
    // binary `*` — five sites, every one an error.
    assert_eq!(count(&findings, Rule::Arith), 5, "{findings:?}");
    assert!(findings
        .iter()
        .filter(|f| f.rule == Rule::Arith)
        .all(|f| f.severity == Severity::Error));
}

#[test]
fn arith_negative_fixture_is_clean() {
    let src = include_str!("fixtures/arith_negative.rs");
    let findings = scan("fixtures/arith_negative.rs", src, SourcePolicy::sim_crate());
    assert_eq!(count(&findings, Rule::Arith), 0, "{findings:?}");
}

#[test]
fn determinism_flow_positive_fixture_trips_every_site() {
    let src = include_str!("fixtures/determinism_flow_positive.rs");
    let findings = scan(
        "fixtures/determinism_flow_positive.rs",
        src,
        SourcePolicy::sim_crate(),
    );
    // A conditional draw in an `if`, one under a match arm, one unstable
    // sort, one float→int cast.
    assert_eq!(count(&findings, Rule::DeterminismFlow), 4, "{findings:?}");
}

#[test]
fn determinism_flow_negative_fixture_is_clean() {
    let src = include_str!("fixtures/determinism_flow_negative.rs");
    let findings = scan(
        "fixtures/determinism_flow_negative.rs",
        src,
        SourcePolicy::sim_crate(),
    );
    assert_eq!(count(&findings, Rule::DeterminismFlow), 0, "{findings:?}");
}

#[test]
fn determinism_flow_is_scoped_to_sim_crates() {
    // The same violating source under the harness policy is exempt: float
    // math and conditional draws are fine in bench/exec code.
    let src = include_str!("fixtures/determinism_flow_positive.rs");
    let findings = scan(
        "fixtures/determinism_flow_positive.rs",
        src,
        SourcePolicy::harness_crate(),
    );
    assert_eq!(count(&findings, Rule::DeterminismFlow), 0, "{findings:?}");
}

#[test]
fn panic_deep_positive_fixture_trips_every_site() {
    let src = include_str!("fixtures/panic_deep_positive.rs");
    let findings = scan(
        "fixtures/panic_deep_positive.rs",
        src,
        SourcePolicy::sim_crate(),
    );
    // Non-literal index, non-literal division, `unreachable!` — and with
    // no hot set, all stay informational.
    assert_eq!(count(&findings, Rule::PanicDeep), 3, "{findings:?}");
    assert!(findings
        .iter()
        .filter(|f| f.rule == Rule::PanicDeep)
        .all(|f| f.severity == Severity::Info));
}

#[test]
fn panic_deep_negative_fixture_is_clean() {
    let src = include_str!("fixtures/panic_deep_negative.rs");
    let findings = scan(
        "fixtures/panic_deep_negative.rs",
        src,
        SourcePolicy::sim_crate(),
    );
    assert_eq!(count(&findings, Rule::PanicDeep), 0, "{findings:?}");
}

#[test]
fn panic_deep_is_elevated_along_the_hot_call_graph() {
    let src = include_str!("fixtures/panic_deep_hot.rs");
    let pf = ParsedFile::parse("crates/demo/src/hot.rs", src, SourcePolicy::sim_crate());
    let graph = CallGraph::build(std::slice::from_ref(&pf));
    let hot = graph.hot_fns_of(0);
    assert!(!hot.is_empty(), "run_with must seed the hot closure");
    let findings = sem::scan_file(&pf, &hot);
    let deep: Vec<_> = findings.iter().filter(|f| f.rule == Rule::PanicDeep).collect();
    assert_eq!(deep.len(), 2, "{deep:?}");
    // `helper` is reachable from `run_with` → warn; `cold_path` is not →
    // stays info.
    let warns = deep.iter().filter(|f| f.severity == Severity::Warn).count();
    let infos = deep.iter().filter(|f| f.severity == Severity::Info).count();
    assert_eq!((warns, infos), (1, 1), "{deep:?}");
}

#[test]
fn contract_xref_flags_an_uncovered_run_with_type() {
    let sim = ParsedFile::parse(
        "crates/demo/src/sim.rs",
        include_str!("fixtures/contract_xref_sim.rs"),
        SourcePolicy::sim_crate(),
    );
    let uncovered = ParsedFile::parse(
        "crates/demo/tests/equivalence.rs",
        include_str!("fixtures/contract_xref_uncovered_test.rs"),
        SourcePolicy::test_code(),
    );
    let findings = sem::contract_xref(&[sim, uncovered]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::ContractXref);
    assert_eq!(findings[0].severity, Severity::Error);
    assert!(findings[0].message.contains("DemoSim"), "{}", findings[0].message);
}

#[test]
fn contract_xref_accepts_a_covered_run_with_type() {
    let sim = ParsedFile::parse(
        "crates/demo/src/sim.rs",
        include_str!("fixtures/contract_xref_sim.rs"),
        SourcePolicy::sim_crate(),
    );
    let covered = ParsedFile::parse(
        "crates/demo/tests/equivalence.rs",
        include_str!("fixtures/contract_xref_covered_test.rs"),
        SourcePolicy::test_code(),
    );
    let findings = sem::contract_xref(&[sim, covered]);
    assert!(findings.is_empty(), "{findings:?}");
}
