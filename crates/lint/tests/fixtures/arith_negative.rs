//! Clean input for the `arith` rule: every idiom here is the sanctioned
//! replacement for a positive-fixture violation, and none may produce a
//! finding.

/// Widening never truncates.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

/// The sanctioned narrowing idiom.
pub fn narrowed(total_accesses: u64) -> u32 {
    u32::try_from(total_accesses).unwrap_or(u32::MAX)
}

/// Char-to-u32 is lossless by construction.
pub fn char_code(c: char) -> u32 {
    u32::from(c)
}

/// A literal operand cannot overflow at runtime.
pub fn literal_cast() -> u32 {
    4096u64 as u32
}

pub struct Stats {
    pub accesses: u64,
    pub busy_cycles: u64,
}

impl Stats {
    /// Saturating arithmetic on accounting counters is the fix idiom.
    pub fn bump(&mut self, delta: u64) {
        self.accesses = self.accesses.saturating_add(delta);
        self.busy_cycles = self.busy_cycles.saturating_add(1);
    }

    /// Checked combination.
    pub fn combined(&self) -> u64 {
        self.accesses.saturating_add(self.busy_cycles)
    }

    /// Arithmetic on non-accounting locals stays unflagged.
    pub fn geometry(&self, width: u64, height: u64) -> u64 {
        width * height + width
    }
}
