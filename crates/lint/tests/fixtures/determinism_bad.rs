// Fixture: determinism violations a simulation crate must not contain.
use std::collections::HashMap;
use std::time::Instant;

pub fn order_sensitive() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let started = Instant::now();
    m.len() + started.elapsed().subsec_nanos() as usize
}
