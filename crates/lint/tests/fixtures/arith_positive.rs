//! Deliberately violating input for the `arith` rule: every function here
//! must produce at least one finding. Kept out of the real lint walk by
//! the `fixtures` directory exclusion.

/// Narrowing cast on a non-literal accounting value.
pub fn truncate(total_accesses: u64) -> u32 {
    total_accesses as u32
}

pub struct Stats {
    pub accesses: u64,
    pub busy_cycles: u64,
}

impl Stats {
    /// Unchecked compound assignment on accounting counters.
    pub fn bump(&mut self, delta: u64) {
        self.accesses += delta;
        self.busy_cycles += 1;
    }

    /// Unchecked binary `+` between two accounting counters.
    pub fn combined(&self) -> u64 {
        self.accesses + self.busy_cycles
    }

    /// Unchecked `*` scaling an accounting counter.
    pub fn scaled(&self, procs: u64) -> u64 {
        self.busy_cycles * procs
    }
}
