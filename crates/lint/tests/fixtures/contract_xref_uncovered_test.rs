//! An equivalence suite that does NOT name the simulator type: the
//! contract cross-reference rule must flag the gap.

#[test]
fn kernels_agree_for_something_else() {
    assert_eq!(1 + 1, 2);
}
