//! A kernel entry point whose call graph reaches a panic site: the
//! `panic-deep` finding in `helper` must be elevated to warn severity
//! because `run_with` is a hot root.

pub struct HotSim;

impl HotSim {
    pub fn run_with(&self, xs: &[u64], i: usize) -> u64 {
        helper(xs, i)
    }
}

fn helper(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

fn cold_path(xs: &[u64], i: usize) -> u64 {
    xs[i]
}
