//! A simulator type defining `run_with`: the contract cross-reference
//! rule requires some `kernels_*` equivalence test to name it.

pub struct DemoSim {
    seed: u64,
}

impl DemoSim {
    pub fn run_with(&self, kernel: u8) -> u64 {
        self.seed ^ u64::from(kernel)
    }
}
