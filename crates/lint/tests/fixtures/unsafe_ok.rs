// Fixture: properly audited unsafe.
pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is non-null and aligned for the
    // lifetime of this call.
    unsafe { *p }
}
