// Fixture: panic-path violations in library code.
pub fn brittle(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    v.unwrap() + r.expect("always ok")
}

pub fn fine(v: Option<u32>) -> u32 {
    // Non-panicking relatives must not be flagged.
    v.unwrap_or(0)
}
