// Fixture: the same constructs, each explicitly allowlisted.
// abs-lint: allow(determinism) -- fixture demonstrating the escape hatch
use std::collections::HashMap;

pub fn keyed() -> usize {
    // abs-lint: allow(determinism) -- never iterated, only point lookups
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}
