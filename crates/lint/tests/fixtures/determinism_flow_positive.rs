//! Deliberately violating input for the `determinism-flow` rule (scanned
//! under the sim-crate policy).

/// An RNG draw inside a conditionally-skipped block: whether the stream
/// advances depends on data, so seeds stop replaying.
pub fn skewed_draw(rng: &mut Rng, flag: bool) -> u64 {
    let mut total = 0;
    if flag {
        total = rng.next_u64();
    }
    total
}

/// A draw buried under a match arm is just as conditional.
pub fn match_draw(rng: &mut Rng, mode: u8) -> u64 {
    match mode {
        0 => 1,
        _ => rng.next_below(10),
    }
}

/// `sort_unstable` makes equal-key order platform-dependent.
pub fn unstable_order(xs: &mut Vec<(u64, u64)>) {
    xs.sort_unstable_by_key(|p| p.0);
}

/// Float arithmetic feeding integer simulation state.
pub fn drifting_cycles(x: f64) -> u64 {
    x.round() as u64
}
