// Fixture: unsafe without an adjacent SAFETY comment.
pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}
