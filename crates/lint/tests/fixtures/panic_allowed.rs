// Fixture: panic-path opt-outs with written-down invariants.
pub fn justified(v: Option<u32>) -> u32 {
    // abs-lint: allow(panic-path) -- caller checked is_some() one frame up
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
