//! Clean input for the `panic-deep` rule: literal-index access, `get`,
//! float division, and test-gated panics are all sanctioned.

pub fn first(xs: &[u64]) -> u64 {
    xs[0]
}

pub fn safe_pick(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied()
}

pub fn float_rate(total: f64, n: f64) -> f64 {
    (total as f64) / n.max(1.0)
}

pub fn halved(total: u64) -> u64 {
    total / 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let xs = vec![1u64, 2];
        let i = 1;
        assert_eq!(xs[i], 2);
        if false {
            unreachable!("test code is exempt");
        }
    }
}
