//! Deliberately violating input for the `panic-deep` rule: non-literal
//! indexing, division by a non-literal denominator, and `unreachable!`
//! in non-test library code.

pub fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

pub fn rate(total: u64, n: u64) -> u64 {
    total / n
}

pub fn classify(mode: u8) -> &'static str {
    match mode {
        0 => "idle",
        1 => "busy",
        _ => unreachable!("caller validated mode"),
    }
}
