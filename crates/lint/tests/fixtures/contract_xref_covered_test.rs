//! An equivalence suite that names the simulator type: coverage for the
//! contract cross-reference rule.

#[test]
fn kernels_agree_for_demo() {
    let sim = DemoSim { seed: 7 };
    assert_eq!(sim.run_with(0), sim.run_with(0));
}
