// Fixture: violations confined to test-gated items are exempt from the
// determinism and panic-path rules.
pub fn library_code() -> u32 {
    0
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
