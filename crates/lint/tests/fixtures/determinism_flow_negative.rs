//! Clean input for the `determinism-flow` rule: unconditional draws, a
//! stable sort, and integer-only state derivation.

/// Unconditional draws advance the stream identically on every run.
pub fn straight_line_draw(rng: &mut Rng) -> u64 {
    let a = rng.next_u64();
    let b = rng.next_below(10);
    a ^ b
}

/// Stable sorts preserve equal-key order.
pub fn stable_order(xs: &mut Vec<(u64, u64)>) {
    xs.sort_by_key(|p| p.0);
}

/// Integer arithmetic derives state without rounding hazards.
pub fn integer_cycles(n: u64, d: u64) -> u64 {
    (n * 3).div_euclid(d.max(1))
}
