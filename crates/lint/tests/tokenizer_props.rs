//! Property tests for the lossless tokenizer, driven by the workspace's
//! own `forall!` framework: arbitrary concatenations of tricky Rust source
//! fragments must tokenize without loss (the tokens' text re-concatenates
//! to the input byte-for-byte), with sane line numbers.

use abs_lint::tokenizer::{round_trips, tokenize, TokKind};
use abs_sim::check::{self, Config};
use abs_sim::forall;

/// Source fragments chosen to stress every lexer mode and the boundaries
/// between them. Adjacent fragments may fuse into one token (`r` + `"x"`
/// becomes a raw string) — losslessness must survive that too.
const FRAGMENTS: &[&str] = &[
    "fn main() {}\n",
    "// line comment with \"quotes\" and 'ticks'\n",
    "/* block /* nested */ still a comment */",
    "/* depth /* three /* deep */ nesting */ here */",
    "/* unbalanced open /* /* two deep",
    "/** doc block */\n",
    "\"plain string with // no comment\"",
    "\"escaped \\\" quote and \\\\ backslash\"",
    "r\"raw string\"",
    "r#\"raw with \" inside\"#",
    "r##\"nested \"# hashes\"##",
    "r###\"depth three \"## and \"# inside\"###",
    "r#####\"very deep \"#### almost-closer\"#####",
    "b\"byte string\"",
    "b\"escaped \\\" byte \\\\ string \\x7f\"",
    "br#\"raw bytes\"#",
    "br###\"deep raw bytes \"## inside\"###",
    "cr##\"deep raw c string \"# inside\"##",
    "c\"c string\"",
    "'a'",
    "'\\n'",
    "'\\x41'",
    "b'\\x7f'",
    "'lifetime",
    "&'static str",
    "r#match",
    "let x = 0b1010_1111u64;",
    "let f = 1_000.5e-3f32;",
    "x.unwrap();\n",
    "unsafe { *p }",
    "#[cfg(test)]\nmod t {}\n",
    "HashMap<K, V>",
    "=> :: -> ..= .. . ; , # ! ?",
    "\n\n\t  \n",
    "r",       // bare prefix letters that may fuse with what follows
    "b",
    "\"",      // lone quote: unterminated-literal leniency
    "/*",      // unterminated block comment
    "'",
];

fn assemble(indices: &[usize]) -> String {
    indices.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

#[test]
fn arbitrary_fragment_concatenations_round_trip() {
    forall!(Config::with_cases(256), (indices in check::vec_of(check::usize_in(0..FRAGMENTS.len()), 0..24)) {
        let src = assemble(&indices);
        assert!(round_trips(&src), "tokenizer lost bytes on: {src:?}");
    });
}

#[test]
fn line_numbers_are_monotone_and_in_range() {
    forall!(Config::with_cases(128), (indices in check::vec_of(check::usize_in(0..FRAGMENTS.len()), 1..16)) {
        let src = assemble(&indices);
        let total_lines = src.lines().count().max(1) as u32;
        let mut last = 1u32;
        for token in tokenize(&src) {
            assert!(token.line >= last, "line went backwards in {src:?}");
            assert!(token.line <= total_lines, "line {} > {total_lines} in {src:?}", token.line);
            last = token.line;
        }
    });
}

#[test]
fn deep_raw_strings_close_at_the_exact_hash_depth() {
    // `r^N"…"^N` must ignore every shorter quote-hash run in the body and
    // close only on exactly N hashes — for any depth, not just the common
    // one- and two-hash forms.
    forall!(Config::with_cases(64), (depth in check::usize_in(3..9)) {
        let hashes = "#".repeat(depth);
        let almost: String = (0..depth)
            .map(|k| format!("\"{} ", "#".repeat(k)))
            .collect();
        let src = format!("let s = r{hashes}\"{almost}\"{hashes}; after");
        let tokens = tokenize(&src);
        assert!(round_trips(&src), "lost bytes at depth {depth}");
        let raw = tokens
            .iter()
            .find(|t| t.kind == TokKind::RawStr)
            .unwrap_or_else(|| panic!("no raw string at depth {depth}"));
        assert!(raw.text.contains(&almost), "body truncated at depth {depth}");
        assert!(
            tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "after"),
            "tokens after the raw string were swallowed at depth {depth}"
        );
    });
}

#[test]
fn nested_block_comments_track_depth_exactly() {
    forall!(Config::with_cases(64), (depth in check::usize_in(1..12)) {
        let open = "/* ".repeat(depth);
        let close = " */".repeat(depth);
        let src = format!("{open}HashMap{close} code");
        let tokens = tokenize(&src);
        assert!(round_trips(&src), "lost bytes at depth {depth}");
        // The whole nest is ONE comment token; `code` survives as an ident
        // and the buried HashMap never surfaces as one.
        assert_eq!(
            tokens.iter().filter(|t| t.kind == TokKind::BlockComment).count(),
            1,
            "comment split at depth {depth}"
        );
        assert!(tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "code"));
        assert!(!tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
    });
}

#[test]
fn byte_and_c_string_prefixes_never_split() {
    // `b"…"`, `br#"…"#`, `cr##"…"##` must lex as one literal token — a
    // split would leak the body into code and poison name-based rules.
    for src in [
        "b\"unwrap() inside\"",
        "b\"esc \\\" quote\"",
        "br#\"unwrap() raw\"#",
        "br###\"deep \"## run\"###",
        "cr##\"deep c \"# run\"##",
        "c\"plain c\"",
    ] {
        let tokens = tokenize(src);
        assert!(round_trips(src), "{src:?}");
        assert_eq!(
            tokens.iter().filter(|t| t.is_code()).count(),
            1,
            "literal split into multiple code tokens: {src:?} -> {tokens:?}"
        );
        assert!(
            !tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "unwrap"),
            "literal body leaked as idents: {src:?}"
        );
    }
}

#[test]
fn comments_and_strings_never_leak_code_idents() {
    // Whatever the fragments fuse into, a banned name that only ever
    // appears inside comment/string tokens must never surface as an Ident.
    forall!(Config::with_cases(128), (n in check::usize_in(1..8)) {
        let src = format!(
            "{}{}",
            "// HashMap in comment\n\"HashMap in string\"\n".repeat(n),
            "/* HashMap in block */"
        );
        let idents: Vec<_> = tokenize(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "HashMap")
            .collect();
        assert!(idents.is_empty(), "{idents:?}");
    });
}
