//! Fixture-driven rule coverage: for every rule, one positive fixture that
//! must produce findings and one allowlisted/negative fixture that must
//! scan clean. The fixtures live under `tests/fixtures/`, which workspace
//! discovery deliberately skips (they are written to violate the rules).

use abs_lint::rules::{scan_source, Rule, SourcePolicy};
use abs_lint::manifest::scan_manifest;

fn rules_of(findings: &[abs_lint::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_positive_fixture() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let (findings, allows) = scan_source("fixture.rs", src, SourcePolicy::sim_crate());
    assert!(allows.is_empty());
    assert!(
        findings.len() >= 3,
        "expected HashMap x2 + Instant findings, got {findings:?}"
    );
    assert!(rules_of(&findings).iter().all(|&r| r == Rule::Determinism));
    assert!(findings.iter().any(|f| f.line == 2 && f.message.contains("HashMap")));
    assert!(findings.iter().any(|f| f.message.contains("Instant")));
    // The same file is clean under a harness-crate policy.
    let (harness, _) = scan_source("fixture.rs", src, SourcePolicy::harness_crate());
    assert!(harness.is_empty(), "{harness:?}");
}

#[test]
fn determinism_allowlisted_fixture_is_clean() {
    let src = include_str!("fixtures/determinism_allowed.rs");
    let (findings, allows) = scan_source("fixture.rs", src, SourcePolicy::sim_crate());
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows.len(), 2);
    assert!(allows.iter().all(|a| !a.justification.is_empty()));
}

#[test]
fn panic_path_positive_fixture() {
    let src = include_str!("fixtures/panic_bad.rs");
    let (findings, _) = scan_source("fixture.rs", src, SourcePolicy::harness_crate());
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(rules_of(&findings).iter().all(|&r| r == Rule::PanicPath));
    assert!(findings.iter().all(|f| f.line == 3), "{findings:?}");
    // Benches/examples/tests are exempt wholesale.
    let (test_code, _) = scan_source("fixture.rs", src, SourcePolicy::test_code());
    assert!(test_code.is_empty());
}

#[test]
fn panic_path_allowlisted_fixture_is_clean() {
    let src = include_str!("fixtures/panic_allowed.rs");
    let (findings, allows) = scan_source("fixture.rs", src, SourcePolicy::sim_crate());
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows.len(), 1);
    assert!(allows[0].justification.contains("is_some"));
}

#[test]
fn unsafe_positive_and_negative_fixtures() {
    let bad = include_str!("fixtures/unsafe_bad.rs");
    let (findings, _) = scan_source("fixture.rs", bad, SourcePolicy::test_code());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::UnsafeAudit);
    assert_eq!(findings[0].line, 3);

    let good = include_str!("fixtures/unsafe_ok.rs");
    let (findings, _) = scan_source("fixture.rs", good, SourcePolicy::test_code());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn cfg_test_items_are_exempt_fixture() {
    let src = include_str!("fixtures/cfg_test_skip.rs");
    let (findings, _) = scan_source("fixture.rs", src, SourcePolicy::sim_crate());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hermeticity_positive_fixture() {
    let toml = include_str!("fixtures/hermetic_bad.toml");
    let (findings, _) = scan_manifest("fixture/Cargo.toml", toml);
    assert_eq!(findings.len(), 6, "{findings:?}");
    assert!(rules_of(&findings).iter().all(|&r| r == Rule::Hermeticity));
    assert!(findings.iter().any(|f| f.message.contains("build = ")));
    assert!(findings.iter().any(|f| f.message.contains("git")));
    assert!(findings.iter().any(|f| f.message.contains("[build-dependencies]")));
    assert!(findings.iter().any(|f| f.message.contains("dep:serde_json")));
}

#[test]
fn hermeticity_negative_fixture_is_clean() {
    let toml = include_str!("fixtures/hermetic_ok.toml");
    let (findings, allows) = scan_manifest("fixture/Cargo.toml", toml);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(allows.is_empty());
}
