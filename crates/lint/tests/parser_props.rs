//! Property tests for the recursive-descent parser, driven by the
//! workspace's own `forall!` framework.
//!
//! The parser's contract is *losslessness with structure*: for any input,
//! printing the AST reproduces the source byte-for-byte, the item spans
//! tile the token stream with no gaps or overlaps, and reparsing the
//! printed text yields an identical AST (a full round-trip fixed point).

use abs_lint::parser::{parse_source, print_span};
use abs_sim::check::{self, Config};
use abs_sim::forall;

/// Item-level source fragments chosen to stress every parser production:
/// modifier stacking, generic angle-bracket tracking, control-flow heads
/// (including `if let` with struct patterns), macro items, and the
/// lenient Verbatim fallback on deliberately broken input.
const FRAGMENTS: &[&str] = &[
    "fn f() {}\n",
    "pub fn g(a: u32, b: &str) -> u32 { a + b.len() as u32 }\n",
    "pub(crate) unsafe fn h<T: Clone>(x: T) -> T { x.clone() }\n",
    "const LIMIT: usize = 4;\n",
    "pub const fn square(x: u64) -> u64 { x * x }\n",
    "static NAME: &str = \"abs\";\n",
    "struct S { a: u32, b: Vec<u8> }\n",
    "pub struct T<'a>(&'a str);\n",
    "enum E { A, B(u32), C { x: f64 } }\n",
    "union U { i: u32, f: f32 }\n",
    "type Pair = (u64, u64);\n",
    "use std::collections::BTreeMap;\n",
    "mod inner { pub fn leaf() {} }\n",
    "trait Tr { fn req(&self); fn def(&self) {} }\n",
    "impl S { fn m(&self) -> u32 { self.a } }\n",
    "impl<T> Tr for Vec<T> { fn req(&self) {} }\n",
    "impl Iterator for T<'_> { type Item = u8; fn next(&mut self) -> Option<u8> { None } }\n",
    "macro_rules! m { ($x:expr) => { $x + 1 }; }\n",
    "compile_error!(\"never built\");\n",
    "#[derive(Debug, Clone)]\nstruct D;\n",
    "#[cfg(test)]\nmod tests { #[test] fn t() { assert!(true); } }\n",
    "//! inner doc\n",
    "#![allow(dead_code)]\n",
    "/// doc comment\nfn documented() {}\n",
    "fn ctrl() { if let Some(S { a, .. }) = opt { use_it(a); } else { fallback(); } }\n",
    "fn m2(x: u32) -> u32 { match x { 0 => 1, n if n > 9 => n, _ => 0 } }\n",
    "fn loops() { for i in 0..10 { if i % 2 == 0 { continue; } } while cond() { step(); } loop { break; } }\n",
    "fn idx(v: &[u64], i: usize) -> u64 { v[i] / v.len() as u64 }\n",
    "extern \"C\" { fn c_side(x: i32) -> i32; }\n",
    "fn generics() { let _: BTreeMap<u64, Vec<(u8, u8)>> = BTreeMap::new(); }\n",
    "fn strings() { let r = r#\"raw \" body\"#; let b = b\"bytes\"; }\n",
    "fn chars() { let c = 'x'; let nl = '\\n'; let lt: &'static str = \"s\"; }\n",
    "gibberish tokens ;;; that parse as Verbatim\n",
    "fn unterminated() { let s = \"\n",
    "}} stray closers {{\n",
];

fn assemble(indices: &[usize]) -> String {
    indices.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

#[test]
fn arbitrary_item_sequences_round_trip() {
    forall!(Config::with_cases(256), (indices in check::vec_of(check::usize_in(0..FRAGMENTS.len()), 0..12)) {
        let src = assemble(&indices);
        let (tokens, ast) = parse_source(&src);
        // 1. Printing is the identity.
        assert_eq!(ast.print(&tokens), src, "print lost bytes on {src:?}");
        // 2. Spans tile the token stream: no gaps, no overlaps.
        ast.validate_tiling().unwrap_or_else(|e| panic!("tiling broken on {src:?}: {e}"));
        // 3. Reparsing the printed text is a fixed point.
        let (tokens2, ast2) = parse_source(&ast.print(&tokens));
        assert_eq!(tokens, tokens2, "tokens changed on reparse of {src:?}");
        assert_eq!(ast, ast2, "AST changed on reparse of {src:?}");
    });
}

#[test]
fn item_spans_print_back_to_their_source_slices() {
    // Each top-level item's span must print to a contiguous slice of the
    // input, and the concatenation of all item prints plus the trailing
    // span must rebuild the file.
    forall!(Config::with_cases(128), (indices in check::vec_of(check::usize_in(0..FRAGMENTS.len()), 1..8)) {
        let src = assemble(&indices);
        let (tokens, ast) = parse_source(&src);
        let mut rebuilt = String::new();
        for item in &ast.items {
            rebuilt.push_str(&print_span(&tokens, item.span));
        }
        rebuilt.push_str(&print_span(&tokens, ast.trailing));
        assert_eq!(rebuilt, src, "item spans do not cover {src:?}");
    });
}

#[test]
fn the_parser_round_trips_every_workspace_source() {
    // The strongest fixture set available: the real tree. Every source
    // file the lint scans must round-trip exactly.
    let root = abs_lint::default_root();
    let ws = abs_lint::Workspace::discover(&root).expect("workspace discovers");
    assert!(ws.sources.len() >= 80, "{}", ws.sources.len());
    for entry in &ws.sources {
        let text = std::fs::read_to_string(&entry.path).expect("source reads");
        let (tokens, ast) = parse_source(&text);
        assert_eq!(ast.print(&tokens), text, "print differs for {}", entry.rel);
        ast.validate_tiling()
            .unwrap_or_else(|e| panic!("tiling broken in {}: {e}", entry.rel));
        let (_, ast2) = parse_source(&text);
        assert_eq!(ast, ast2, "parse is not deterministic for {}", entry.rel);
    }
}
