//! The rule engine: token-level checks over one Rust source file.
//!
//! Four rules protect the reproduction's determinism claims (the catalog
//! with full rationale lives in `DESIGN.md` §10):
//!
//! * **determinism** — simulation crates must not name unordered
//!   collections (`HashMap`/`HashSet`/`RandomState`), wall clocks
//!   (`Instant`/`SystemTime`), or ambient randomness (`thread_rng`). Any
//!   of these can silently change results between runs or hosts.
//! * **panic-path** — library non-test code must not call `.unwrap()` or
//!   `.expect(…)`; a panic mid-simulation aborts a whole `repro` job and
//!   the escape hatch forces the invariant to be written down.
//! * **unsafe-audit** — every `unsafe` occurrence needs a `// SAFETY:`
//!   comment within the three preceding lines.
//! * **allow-grammar** — the escape hatch itself must be well-formed and
//!   carry a justification.
//!
//! The escape hatch is an in-source comment that must *begin* the comment
//! (so prose mentioning the grammar is inert) and suppresses matching
//! findings on its own line and the line below:
//!
//! ```text
//! # abs-lint escape hatch, quoted so this doc comment stays inert:
//! #   abs-lint: allow(<rule>[, <rule>…]) -- <justification>
//! ```
//!
//! Test code (items under `#[cfg(test)]` or `#[test]`) is exempt from the
//! determinism and panic-path rules but not from the unsafe audit.

use std::fmt;

use crate::tokenizer::{tokenize, TokKind, Token};

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered collections, wall clocks, ambient RNG in sim crates.
    Determinism,
    /// Manifest policy: path-only deps, no build scripts, no externals.
    Hermeticity,
    /// `.unwrap()` / `.expect(…)` in library non-test code.
    PanicPath,
    /// `unsafe` without an adjacent `SAFETY:` comment.
    UnsafeAudit,
    /// Malformed `abs-lint: allow(…)` directives.
    AllowGrammar,
    /// Truncating casts / unchecked `+`·`*` on accounting state
    /// ([`crate::sem`]).
    Arith,
    /// RNG draws in conditional contexts, unstable sorts, float→int
    /// arithmetic feeding sim state ([`crate::sem`]).
    DeterminismFlow,
    /// Slice indexing, non-literal division, `unreachable!` — elevated
    /// when reachable from kernel hot loops ([`crate::sem`]).
    PanicDeep,
    /// `run_with` types not named by any kernel-equivalence test
    /// ([`crate::sem`]).
    ContractXref,
    /// An allow directive that no longer suppresses anything
    /// ([`crate::lint_workspace`]).
    StaleAllow,
}

impl Rule {
    /// The rules an `allow(…)` directive may name: everything except the
    /// grammar rule (which guards the directives themselves) and the
    /// staleness rule (allowing a stale allow would be self-defeating).
    pub const ALLOWABLE: [Rule; 8] = [
        Rule::Determinism,
        Rule::Hermeticity,
        Rule::PanicPath,
        Rule::UnsafeAudit,
        Rule::Arith,
        Rule::DeterminismFlow,
        Rule::PanicDeep,
        Rule::ContractXref,
    ];

    /// The kebab-case rule name used in directives and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Hermeticity => "hermeticity",
            Rule::PanicPath => "panic-path",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::AllowGrammar => "allow-grammar",
            Rule::Arith => "arith",
            Rule::DeterminismFlow => "determinism-flow",
            Rule::PanicDeep => "panic-deep",
            Rule::ContractXref => "contract-xref",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// Parses a directive rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALLOWABLE.into_iter().find(|r| r.name() == name)
    }

    /// The severity a finding of this rule carries by default. `sem`
    /// elevates panic-deep to [`Severity::Warn`] on hot-loop-reachable
    /// paths.
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::Determinism
            | Rule::Hermeticity
            | Rule::PanicPath
            | Rule::UnsafeAudit
            | Rule::AllowGrammar
            | Rule::Arith
            | Rule::ContractXref
            | Rule::StaleAllow => Severity::Error,
            Rule::DeterminismFlow => Severity::Warn,
            Rule::PanicDeep => Severity::Info,
        }
    }
}

/// How strongly a finding gates.
///
/// Only [`Severity::Error`] findings make a tree unclean (nonzero exit);
/// `Warn` and `Info` findings live in the committed baseline and gate
/// *differentially* — `repro lint --diff` fails on any **new** finding of
/// any severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Recorded in the report; surfaced only when new.
    Info,
    /// Suspicious; surfaced in text output and gated when new.
    Warn,
    /// Violates a hard invariant; fails the run outright.
    Error,
}

impl Severity {
    /// The lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a report severity name.
    pub fn from_name(name: &str) -> Option<Severity> {
        [Severity::Info, Severity::Warn, Severity::Error]
            .into_iter()
            .find(|s| s.name() == name)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violated at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// How strongly the finding gates.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// A finding at the rule's default severity.
    pub fn new(rule: Rule, file: impl Into<String>, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule,
            severity: rule.default_severity(),
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}]: {}",
            self.file, self.line, self.rule, self.severity, self.message
        )
    }
}

/// One parsed escape-hatch directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rules the directive suppresses.
    pub rules: Vec<Rule>,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The mandatory justification after `--`.
    pub justification: String,
}

impl Allow {
    /// Whether this directive suppresses a finding of `rule` on `line`
    /// (the directive's own line, for trailing comments, or the line
    /// directly below, for directives placed above the offending line).
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        self.rules.contains(&rule) && (line == self.line || line == self.line + 1)
    }
}

/// Which rules apply to one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcePolicy {
    /// Apply the determinism rule (simulation crates only).
    pub determinism: bool,
    /// Apply the panic-path rule (library code; not tests/benches).
    pub panic_path: bool,
}

impl SourcePolicy {
    /// Policy for simulation-crate library sources.
    pub fn sim_crate() -> Self {
        Self {
            determinism: true,
            panic_path: true,
        }
    }

    /// Policy for harness/tooling library sources (`abs-exec`, `abs-obs`,
    /// `abs-bench`, `abs-lint`, the facade).
    pub fn harness_crate() -> Self {
        Self {
            determinism: false,
            panic_path: true,
        }
    }

    /// Policy for test/bench/example sources: unsafe audit only.
    pub fn test_code() -> Self {
        Self {
            determinism: false,
            panic_path: false,
        }
    }
}

/// Identifiers the determinism rule forbids in simulation crates, with the
/// reason each endangers reproducibility.
const DETERMINISM_BANS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is unspecified and varies across runs; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is unspecified and varies across runs; use BTreeSet",
    ),
    (
        "RandomState",
        "randomized hashing makes any derived order run-dependent",
    ),
    (
        "Instant",
        "wall-clock reads do not replay; use the simulated cycle clock",
    ),
    (
        "SystemTime",
        "wall-clock reads do not replay; use the simulated cycle clock",
    ),
    (
        "thread_rng",
        "ambient RNG is unseeded; use abs_sim::rng seeded from the run seed",
    ),
];

/// Scans one Rust source file. Returns surviving findings (allow
/// directives already applied) plus every well-formed directive, for the
/// report's audit trail.
pub fn scan_source(rel_path: &str, text: &str, policy: SourcePolicy) -> (Vec<Finding>, Vec<Allow>) {
    let (mut findings, allows) = scan_source_raw(rel_path, text, policy);
    findings.retain(|f| {
        f.rule == Rule::AllowGrammar || !allows.iter().any(|a| a.covers(f.rule, f.line))
    });
    (findings, allows)
}

/// Like [`scan_source`] but returns every finding *before* allow
/// suppression. [`crate::lint_workspace`] needs the raw set to decide
/// which allows are stale, and applies suppression itself after merging
/// in the semantic rules.
pub fn scan_source_raw(
    rel_path: &str,
    text: &str,
    policy: SourcePolicy,
) -> (Vec<Finding>, Vec<Allow>) {
    let tokens = tokenize(text);
    let mut findings = Vec::new();
    let mut allows = Vec::new();

    for token in &tokens {
        if let TokKind::LineComment | TokKind::BlockComment = token.kind {
            match parse_directive(&token.text) {
                DirectiveParse::NotADirective => {}
                DirectiveParse::Ok { rules, justification } => allows.push(Allow {
                    rules,
                    file: rel_path.to_string(),
                    line: token.line,
                    justification,
                }),
                DirectiveParse::Malformed(why) => {
                    findings.push(Finding::new(Rule::AllowGrammar, rel_path, token.line, why))
                }
            }
        }
    }

    let in_test = test_code_mask(&tokens);
    let safety_lines = safety_comment_lines(&tokens);

    // Code tokens with their position in the full stream.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_code())
        .collect();

    for (ci, &(ti, token)) in code.iter().enumerate() {
        if token.kind != TokKind::Ident {
            continue;
        }
        if policy.determinism && !in_test[ti] {
            if let Some((_, reason)) = DETERMINISM_BANS.iter().find(|(n, _)| *n == token.text) {
                findings.push(Finding::new(
                    Rule::Determinism,
                    rel_path,
                    token.line,
                    format!("`{}` in simulation code: {reason}", token.text),
                ));
            }
        }
        if policy.panic_path
            && !in_test[ti]
            && (token.text == "unwrap" || token.text == "expect")
            && ci > 0
            && code[ci - 1].1.text == "."
            && matches!(code.get(ci + 1), Some((_, t)) if t.text == "(")
        {
            findings.push(Finding::new(
                Rule::PanicPath,
                rel_path,
                token.line,
                format!(
                    "`.{}(…)` in library code: panics abort the whole repro job; \
                     return an error or justify the invariant via the allow directive",
                    token.text
                ),
            ));
        }
        if token.text == "unsafe" {
            let documented = safety_lines
                .iter()
                .any(|&l| l <= token.line && token.line.saturating_sub(l) <= 3);
            if !documented {
                findings.push(Finding::new(
                    Rule::UnsafeAudit,
                    rel_path,
                    token.line,
                    "`unsafe` without a `SAFETY:` comment within the three \
                     preceding lines",
                ));
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, allows)
}

/// Lines on which a `SAFETY:` comment *ends* (multi-line block comments
/// count at their last line, nearest the code they document).
fn safety_comment_lines(tokens: &[Token]) -> Vec<u32> {
    tokens
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .filter(|t| t.text.contains("SAFETY:"))
        .map(|t| t.line.saturating_add(u32::try_from(t.text.matches('\n').count()).unwrap_or(u32::MAX)))
        .collect()
}

/// Marks every token that belongs to a `#[cfg(test)]`/`#[test]` item.
///
/// The scan recognizes the attribute sequence `#` `[` … `]`, joins its
/// code tokens, and when the attribute is test-shaped skips over any
/// further attributes and then the item itself (to the matching close
/// brace, or a top-level `;` for brace-less items).
fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
    let mut ci = 0usize;
    while ci < code.len() {
        let (is_attr, attr_text, after_attr) = read_attribute(tokens, &code, ci);
        if !is_attr || !is_test_attribute(&attr_text) {
            ci += 1;
            continue;
        }
        let start = ci;
        let mut cj = after_attr;
        // Absorb any further attributes on the same item.
        loop {
            let (more, _, next) = read_attribute(tokens, &code, cj);
            if !more {
                break;
            }
            cj = next;
        }
        // Skip the item body.
        let mut depth = 0usize;
        while cj < code.len() {
            match tokens[code[cj]].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    cj += 1;
                    break;
                }
                _ => {}
            }
            cj += 1;
        }
        // Mark every token (code or not) spanned by the attribute + item.
        let first = code[start];
        let last = if cj > 0 && cj - 1 < code.len() {
            code[cj - 1]
        } else {
            tokens.len() - 1
        };
        for slot in &mut mask[first..=last] {
            *slot = true;
        }
        ci = cj.max(ci + 1);
    }
    mask
}

/// Reads an attribute starting at code index `ci`. Returns whether one was
/// present, its joined inner text, and the code index just past `]`.
fn read_attribute(tokens: &[Token], code: &[usize], ci: usize) -> (bool, String, usize) {
    if ci + 1 >= code.len()
        || tokens[code[ci]].text != "#"
        || tokens[code[ci + 1]].text != "["
    {
        return (false, String::new(), ci);
    }
    let mut depth = 1usize;
    let mut cj = ci + 2;
    let mut inner = String::new();
    while cj < code.len() {
        let text = tokens[code[cj]].text.as_str();
        match text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (true, inner, cj + 1);
                }
            }
            _ => {}
        }
        inner.push_str(text);
        cj += 1;
    }
    (false, String::new(), ci) // unterminated attribute
}

/// Whether a joined attribute body gates the item to test builds.
fn is_test_attribute(attr: &str) -> bool {
    attr == "test"
        || attr == "cfg(test)"
        || attr.starts_with("cfg(test,")
        || attr.starts_with("cfg(all(test")
}

/// Result of trying to read a directive out of one comment.
enum DirectiveParse {
    NotADirective,
    Ok {
        rules: Vec<Rule>,
        justification: String,
    },
    Malformed(String),
}

/// Parses `abs-lint: allow(rule[, rule]) -- justification` from a comment.
/// The directive must begin the comment body (after the `//`/`/*` sigils),
/// so prose that merely mentions the grammar never parses as one.
fn parse_directive(comment: &str) -> DirectiveParse {
    let body = comment
        .trim_start_matches(['/', '*', '!'])
        .trim_start();
    let Some(rest) = body.strip_prefix("abs-lint:") else {
        return DirectiveParse::NotADirective;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return DirectiveParse::Malformed(
            "directive must be `abs-lint: allow(<rule>[, <rule>…]) -- <justification>`"
                .to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return DirectiveParse::Malformed("unclosed `allow(` in directive".to_string());
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        match Rule::from_name(name) {
            Some(rule) => rules.push(rule),
            None => {
                return DirectiveParse::Malformed(format!(
                    "unknown rule {name:?} in allow directive; known: {}",
                    Rule::ALLOWABLE.map(Rule::name).join(", ")
                ))
            }
        }
    }
    if rules.is_empty() {
        return DirectiveParse::Malformed("empty rule list in allow directive".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return DirectiveParse::Malformed(
            "allow directive is missing its `-- <justification>`".to_string(),
        );
    };
    let justification = justification.trim().trim_end_matches("*/").trim();
    if justification.is_empty() {
        return DirectiveParse::Malformed(
            "allow directive has an empty justification".to_string(),
        );
    }
    DirectiveParse::Ok {
        rules,
        justification: justification.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_findings(src: &str) -> Vec<Finding> {
        scan_source("test.rs", src, SourcePolicy::sim_crate()).0
    }

    #[test]
    fn determinism_flags_hashmap_with_line() {
        let f = sim_findings("use std::collections::HashMap;\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Determinism);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn determinism_ignores_strings_comments_and_tests() {
        let src = r#"
            // a HashMap in a comment
            const NAME: &str = "HashMap";
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let _ = HashMap::<u8, u8>::new(); }
            }
        "#;
        assert!(sim_findings(src).is_empty(), "{:?}", sim_findings(src));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn f() { let x: HashMap<u8,u8> = HashMap::new(); }\n";
        assert_eq!(sim_findings(src).len(), 2);
    }

    #[test]
    fn panic_path_flags_unwrap_and_expect_only_as_calls() {
        let src = "fn f() { a.unwrap(); b.expect(\"why\"); c.unwrap_or(0); d.expect_err(); }";
        let f = sim_findings(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::PanicPath));
    }

    #[test]
    fn test_functions_may_unwrap() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        let f = sim_findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let src = "\
fn f() {
    // abs-lint: allow(panic-path) -- the queue is non-empty by the phase invariant
    q.front().unwrap();
    r.pop().unwrap(); // abs-lint: allow(panic-path) -- pushed two lines above

    s.take().unwrap();
}
";
        let (f, allows) = scan_source("t.rs", src, SourcePolicy::sim_crate());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert_eq!(allows.len(), 2);
        assert!(allows[0].justification.contains("phase invariant"));
    }

    #[test]
    fn allow_does_not_cross_rules() {
        let src = "// abs-lint: allow(determinism) -- not about panics\nx.unwrap();\n";
        let f = sim_findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicPath);
    }

    #[test]
    fn malformed_directives_are_findings() {
        for (src, needle) in [
            ("// abs-lint: allow(panic-path)\nx();\n", "justification"),
            ("// abs-lint: allow(panic-path) -- \nx();\n", "empty justification"),
            ("// abs-lint: allow(warp-core) -- because\n", "unknown rule"),
            ("// abs-lint: deny(panic-path) -- because\n", "must be"),
            ("// abs-lint: allow() -- because\n", "unknown rule"),
        ] {
            let f = sim_findings(src);
            assert_eq!(f.len(), 1, "{src:?} -> {f:?}");
            assert_eq!(f[0].rule, Rule::AllowGrammar);
            assert!(f[0].message.contains(needle), "{src:?} -> {}", f[0].message);
        }
    }

    #[test]
    fn prose_mentioning_the_grammar_is_inert() {
        let src = "/// Annotate with `abs-lint: allow(panic-path) -- reason` to opt out.\nfn f() {}\n";
        // Doc comments whose body starts with a backtick are not directives.
        let (f, allows) = scan_source("t.rs", src, SourcePolicy::sim_crate());
        assert!(f.is_empty(), "{f:?}");
        assert!(allows.is_empty());
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// abs-lint: allow(determinism, panic-path) -- measured host timing\n\
                   let t = Instant::now().elapsed().as_secs_f64().to_string().parse::<f64>().unwrap();\n";
        assert!(sim_findings(src).is_empty());
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let f = scan_source("t.rs", bad, SourcePolicy::test_code()).0;
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnsafeAudit);

        let good = "fn f() {\n    // SAFETY: guarded by the bounds check above.\n    unsafe { x() }\n}";
        assert!(scan_source("t.rs", good, SourcePolicy::test_code()).0.is_empty());

        let far = "fn f() {\n    // SAFETY: too far away.\n\n\n\n\n    unsafe { x() }\n}";
        assert_eq!(scan_source("t.rs", far, SourcePolicy::test_code()).0.len(), 1);
    }

    #[test]
    fn unsafe_audit_applies_even_in_test_code() {
        let src = "#[test]\nfn t() { unsafe { x() } }";
        let f = scan_source("t.rs", src, SourcePolicy::sim_crate()).0;
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnsafeAudit);
    }

    #[test]
    fn harness_policy_skips_determinism() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(scan_source("t.rs", src, SourcePolicy::harness_crate()).0.is_empty());
        assert_eq!(sim_findings(src).len(), 2);
    }

    #[test]
    fn findings_render_as_file_line_rule() {
        let f = sim_findings("fn f() { x.unwrap(); }");
        let line = f[0].to_string();
        assert!(line.starts_with("test.rs:1: panic-path [error]:"), "{line}");
    }
}
