//! **abs-lint** — a hermetic static-analysis pass for the workspace.
//!
//! Everything this reproduction claims — bit-identical cycle/event
//! kernels, seeded replay, byte-identical traces at any `--jobs` count —
//! rests on *source-level* rules that the dynamic suites
//! (`kernel_equivalence`, `trace_identity`) can only sample. This crate
//! enforces those rules statically, with zero external dependencies like
//! the rest of the workspace:
//!
//! * **determinism** — simulation crates must not use unordered
//!   collections, wall clocks, or unseeded randomness ([`rules`]).
//! * **hermeticity** — every `Cargo.toml` keeps the dependency closure
//!   inside the repository ([`manifest`]).
//! * **panic-path** — library non-test code must not `.unwrap()` /
//!   `.expect(…)` without a written-down invariant ([`rules`]).
//! * **unsafe-audit** — every `unsafe` carries a `SAFETY:` comment
//!   ([`rules`]).
//!
//! Scanning is built on a hand-rolled, lossless Rust [`tokenizer`] that is
//! comment-, string-, raw-string- and char-literal-aware, so a forbidden
//! name inside a doc comment or a string never produces a false positive.
//! Each rule is individually toggleable per finding site with an in-source
//! escape hatch (grammar and catalog in `DESIGN.md` §10). Reports render
//! as `file:line` text diagnostics and as a JSON document written to
//! `repro_out/lint_report.json` ([`report`]).
//!
//! Run it as `cargo run -p abs-lint` (add `--json` for the report file),
//! or as `repro lint` from the bench harness.
//!
//! # Examples
//!
//! ```
//! use abs_lint::rules::{scan_source, Rule, SourcePolicy};
//!
//! let src = "use std::collections::HashMap;\n";
//! let (findings, _) = scan_source("demo.rs", src, SourcePolicy::sim_crate());
//! assert_eq!(findings[0].rule, Rule::Determinism);
//! assert_eq!(findings[0].line, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod diff;
pub mod manifest;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sem;
pub mod tokenizer;
pub mod workspace;

use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{Allow, Finding, Rule, SourcePolicy};
pub use workspace::Workspace;

/// The workspace root this crate was built in (callers outside the repo
/// pass their own root to [`lint_workspace`]).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Two-phase: first every source is tokenized, parsed, and scanned raw
/// (token rules + semantic rules over the AST, with panic-deep severities
/// elevated along the [`callgraph`] hot closure); then allow directives
/// are applied uniformly, and any directive that suppressed *nothing* in
/// the raw set becomes a [`Rule::StaleAllow`] finding — the escape
/// hatches can never outlive the findings they justify.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let ws = Workspace::discover(root)?;
    let mut findings = ws.findings.clone();
    let mut allows = Vec::new();
    let mut parsed: Vec<sem::ParsedFile> = Vec::new();

    for entry in &ws.sources {
        let text = std::fs::read_to_string(&entry.path)
            .map_err(|e| format!("cannot read {}: {e}", entry.path.display()))?;
        let (f, a) = rules::scan_source_raw(&entry.rel, &text, entry.policy);
        findings.extend(f);
        allows.extend(a);
        parsed.push(sem::ParsedFile::parse(&entry.rel, &text, entry.policy));
    }
    for (path, rel) in &ws.manifests {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (f, a) = manifest::scan_manifest_raw(rel, &text);
        findings.extend(f);
        allows.extend(a);
    }

    let graph = callgraph::CallGraph::build(&parsed);
    for (i, pf) in parsed.iter().enumerate() {
        findings.extend(sem::scan_file(pf, &graph.hot_fns_of(i)));
    }
    findings.extend(sem::contract_xref(&parsed));

    // Uniform suppression over the merged raw set, then staleness: a
    // directive must cover at least one raw finding to earn its keep.
    let raw = findings.clone();
    findings.retain(|f| {
        f.rule == Rule::AllowGrammar
            || !allows
                .iter()
                .any(|a| a.file == f.file && a.covers(f.rule, f.line))
    });
    for allow in &allows {
        let used = raw
            .iter()
            .any(|f| f.file == allow.file && allow.covers(f.rule, f.line));
        if !used {
            let names: Vec<&str> = allow.rules.iter().map(|r| r.name()).collect();
            findings.push(rules::Finding::new(
                Rule::StaleAllow,
                allow.file.clone(),
                allow.line,
                format!(
                    "allow({}) no longer suppresses any finding; delete the stale directive",
                    names.join(", ")
                ),
            ));
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        root: root.display().to_string(),
        findings,
        allows,
        files_scanned: ws.sources.len(),
        manifests_scanned: ws.manifests.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_workspace_is_clean() {
        // The acceptance gate: the tree the lint ships in passes its own
        // pass. Every historical finding was either fixed or explicitly
        // allowlisted with a justification.
        let report = lint_workspace(&default_root()).expect("lint runs");
        assert!(
            report.is_clean(),
            "the workspace must lint clean:\n{}",
            report.to_text()
        );
        assert!(report.files_scanned >= 80, "{}", report.files_scanned);
        assert!(report.manifests_scanned >= 11, "{}", report.manifests_scanned);
    }

    #[test]
    fn every_allow_carries_a_justification() {
        let report = lint_workspace(&default_root()).expect("lint runs");
        for allow in &report.allows {
            assert!(
                !allow.justification.trim().is_empty(),
                "{}:{} allow has no justification",
                allow.file,
                allow.line
            );
        }
    }

    #[test]
    fn seeded_violation_is_caught() {
        // Simulate reintroducing a HashMap into crates/coherence: scan the
        // real directory.rs source with one poisoned line appended under
        // the crate's real policy.
        let root = default_root();
        let path = root.join("crates/coherence/src/directory.rs");
        let mut text = std::fs::read_to_string(path).expect("directory.rs exists");
        let line_count = text.lines().count() as u32;
        text.push_str("use std::collections::HashMap;\n");
        let (findings, _) = rules::scan_source(
            "crates/coherence/src/directory.rs",
            &text,
            SourcePolicy::sim_crate(),
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == Rule::Determinism && f.line == line_count + 1),
            "{findings:?}"
        );
    }
}
