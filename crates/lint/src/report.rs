//! The lint report: text diagnostics for humans, JSON for machines.
//!
//! The JSON document is built on `abs_exec::json` (the same hand-rolled
//! model the run manifests use) and written as
//! `repro_out/lint_report.json`; CI uploads it as an artifact. Key order
//! and file ordering are deterministic, so the report bytes are stable for
//! a given tree.

use std::path::{Path, PathBuf};

use abs_exec::json::Value;

use crate::rules::{Allow, Finding, Severity};

/// Schema version of the JSON report. Version 2 added the per-finding
/// `severity` field, the severity summary, and the top-level
/// `schema_version` key that differential mode keys on.
pub const REPORT_VERSION: u32 = 2;

/// Everything one lint run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Workspace root the run scanned.
    pub root: String,
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every well-formed allow directive, sorted by (file, line) — the
    /// audit trail of what the tree explicitly opted out of.
    pub allows: Vec<Allow>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// Whether the tree is clean (exit code 0): no **error**-severity
    /// findings. Warn/info findings live in the committed baseline and
    /// gate differentially via [`crate::diff`].
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// `file:line: rule [severity]: message` diagnostics (error and warn
    /// findings only; info findings are counted in the summary and kept
    /// in the JSON report) plus a one-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            if finding.severity >= Severity::Warn {
                out.push_str(&finding.to_string());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "abs-lint: {} error(s), {} warn(s), {} info across {} files and {} manifests ({} allows)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            self.files_scanned,
            self.manifests_scanned,
            self.allows.len(),
        ));
        out
    }

    /// The machine-readable report document. Findings are (re)sorted by
    /// (file, line, rule) so the bytes are stable for a given tree — the
    /// property the committed diff baseline depends on.
    pub fn to_json(&self) -> Value {
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        let findings = sorted
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("rule".into(), Value::Str(f.rule.name().to_string())),
                    ("severity".into(), Value::Str(f.severity.name().to_string())),
                    ("file".into(), Value::Str(f.file.clone())),
                    ("line".into(), Value::Num(f.line as f64)),
                    ("message".into(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        let allows = self
            .allows
            .iter()
            .map(|a| {
                Value::Obj(vec![
                    (
                        "rules".into(),
                        Value::Arr(
                            a.rules
                                .iter()
                                .map(|r| Value::Str(r.name().to_string()))
                                .collect(),
                        ),
                    ),
                    ("file".into(), Value::Str(a.file.clone())),
                    ("line".into(), Value::Num(a.line as f64)),
                    ("justification".into(), Value::Str(a.justification.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("tool".into(), Value::Str("abs-lint".to_string())),
            ("schema_version".into(), Value::Num(f64::from(REPORT_VERSION))),
            ("root".into(), Value::Str(self.root.clone())),
            ("clean".into(), Value::Bool(self.is_clean())),
            (
                "severity_counts".into(),
                Value::Obj(vec![
                    ("error".into(), Value::Num(self.count(Severity::Error) as f64)),
                    ("warn".into(), Value::Num(self.count(Severity::Warn) as f64)),
                    ("info".into(), Value::Num(self.count(Severity::Info) as f64)),
                ]),
            ),
            ("files_scanned".into(), Value::Num(self.files_scanned as f64)),
            (
                "manifests_scanned".into(),
                Value::Num(self.manifests_scanned as f64),
            ),
            ("findings".into(), Value::Arr(findings)),
            ("allows".into(), Value::Arr(allows)),
        ])
    }

    /// Writes `lint_report.json` into `dir`, creating it if needed.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("lint_report.json");
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> Report {
        Report {
            root: "/ws".into(),
            findings: vec![Finding::new(
                Rule::Determinism,
                "crates/coherence/src/directory.rs",
                10,
                "`HashMap` in simulation code",
            )],
            allows: vec![Allow {
                rules: vec![Rule::PanicPath],
                file: "crates/net/src/packet.rs".into(),
                line: 5,
                justification: "occupancy bit set implies non-empty queue".into(),
            }],
            files_scanned: 90,
            manifests_scanned: 11,
        }
    }

    #[test]
    fn text_has_file_line_diagnostics_and_summary() {
        let text = sample().to_text();
        assert!(
            text.contains("crates/coherence/src/directory.rs:10: determinism [error]:"),
            "{text}"
        );
        assert!(text.contains("1 error(s), 0 warn(s), 0 info"), "{text}");
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let rendered = sample().to_json().render_pretty();
        let v = Value::parse(&rendered).expect("report JSON parses");
        assert_eq!(v.get("tool").and_then(Value::as_str), Some("abs-lint"));
        assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
        let findings = v.get("findings").and_then(Value::as_array).expect("array");
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(Value::as_str),
            Some("determinism")
        );
        assert_eq!(
            findings[0].get("severity").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            v.get("schema_version").and_then(Value::as_f64),
            Some(f64::from(REPORT_VERSION))
        );
        assert_eq!(findings[0].get("line").and_then(Value::as_f64), Some(10.0));
        let allows = v.get("allows").and_then(Value::as_array).expect("array");
        assert_eq!(
            allows[0].get("justification").and_then(Value::as_str),
            Some("occupancy bit set implies non-empty queue")
        );
    }

    #[test]
    fn clean_report_is_clean() {
        let mut r = sample();
        r.findings.clear();
        assert!(r.is_clean());
        assert_eq!(r.to_json().get("clean").and_then(Value::as_bool), Some(true));
    }
}
