//! Differential gating: compare a fresh report against the committed
//! baseline (`repro_out/baselines/lint_report.json`).
//!
//! The tree legitimately carries warn/info findings (the committed
//! baseline records them); what CI must catch is *regression*. A finding
//! is matched to the baseline by the multiset key `(rule, file, message)`
//! — deliberately ignoring the line number, so unrelated code motion in a
//! file does not invalidate the baseline. `repro lint --diff` fails on
//! any finding, of any severity, that has no remaining baseline
//! counterpart.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use abs_exec::json::Value;

use crate::report::Report;
use crate::rules::Finding;

/// The committed baseline location under a workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("repro_out").join("baselines").join("lint_report.json")
}

/// Diffs `current` against the committed baseline under `root`.
pub fn diff_against_baseline(root: &Path, current: &Report) -> Result<DiffResult, String> {
    let path = baseline_path(root);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read baseline {}: {e} (refresh it with `repro lint --json` \
             and copy repro_out/lint_report.json into repro_out/baselines/)",
            path.display()
        )
    })?;
    diff_against(&text, current)
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffResult {
    /// Findings with no baseline counterpart — the regressions.
    pub new_findings: Vec<Finding>,
    /// Baseline entries no current finding matched (fixed since the
    /// baseline was committed; a hint to refresh it).
    pub resolved: usize,
    /// Total findings in the baseline.
    pub baseline_total: usize,
}

impl DiffResult {
    /// Whether the tree introduces no new findings.
    pub fn is_clean(&self) -> bool {
        self.new_findings.is_empty()
    }

    /// Human-readable comparison summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.new_findings {
            out.push_str("NEW: ");
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "abs-lint --diff: {} new finding(s), {} resolved, {} in baseline\n",
            self.new_findings.len(),
            self.resolved,
            self.baseline_total,
        ));
        out
    }
}

/// Compares `current` against the baseline report JSON.
pub fn diff_against(baseline_json: &str, current: &Report) -> Result<DiffResult, String> {
    let doc = Value::parse(baseline_json).map_err(|e| format!("baseline JSON: {e}"))?;
    if doc.get("tool").and_then(Value::as_str) != Some("abs-lint") {
        return Err("baseline is not an abs-lint report (missing tool tag)".to_string());
    }
    let entries = doc
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("baseline has no findings array")?;

    let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    let mut baseline_total = 0usize;
    for entry in entries {
        let rule = entry.get("rule").and_then(Value::as_str).unwrap_or("");
        let file = entry.get("file").and_then(Value::as_str).unwrap_or("");
        let message = entry.get("message").and_then(Value::as_str).unwrap_or("");
        *budget
            .entry((rule.to_string(), file.to_string(), message.to_string()))
            .or_insert(0) += 1;
        baseline_total += 1;
    }

    let mut new_findings = Vec::new();
    for finding in &current.findings {
        let key = (
            finding.rule.name().to_string(),
            finding.file.clone(),
            finding.message.clone(),
        );
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => new_findings.push(finding.clone()),
        }
    }
    let resolved = budget.values().sum();
    Ok(DiffResult {
        new_findings,
        resolved,
        baseline_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            root: "/ws".into(),
            findings,
            allows: Vec::new(),
            files_scanned: 1,
            manifests_scanned: 1,
        }
    }

    fn f(file: &str, line: u32, message: &str) -> Finding {
        Finding::new(Rule::PanicDeep, file, line, message)
    }

    #[test]
    fn identical_report_diffs_clean() {
        let report = report_with(vec![f("a.rs", 3, "idx"), f("b.rs", 9, "div")]);
        let baseline = report.to_json().render_pretty();
        let d = diff_against(&baseline, &report).expect("diff runs");
        assert!(d.is_clean());
        assert_eq!(d.resolved, 0);
        assert_eq!(d.baseline_total, 2);
    }

    #[test]
    fn line_motion_does_not_regress() {
        let baseline = report_with(vec![f("a.rs", 3, "idx")]).to_json().render_pretty();
        let moved = report_with(vec![f("a.rs", 47, "idx")]);
        assert!(diff_against(&baseline, &moved).expect("diff").is_clean());
    }

    #[test]
    fn new_finding_is_a_regression_even_at_low_severity() {
        let baseline = report_with(vec![f("a.rs", 3, "idx")]).to_json().render_pretty();
        let current = report_with(vec![f("a.rs", 3, "idx"), f("a.rs", 5, "second idx")]);
        let d = diff_against(&baseline, &current).expect("diff");
        assert_eq!(d.new_findings.len(), 1);
        assert_eq!(d.new_findings[0].message, "second idx");
        assert!(d.to_text().contains("NEW: a.rs:5"));
    }

    #[test]
    fn duplicate_messages_are_counted_as_a_multiset() {
        // Two identical findings in the baseline cover exactly two in the
        // current tree; a third is new.
        let baseline =
            report_with(vec![f("a.rs", 1, "idx"), f("a.rs", 2, "idx")]).to_json().render_pretty();
        let two = report_with(vec![f("a.rs", 10, "idx"), f("a.rs", 20, "idx")]);
        assert!(diff_against(&baseline, &two).expect("diff").is_clean());
        let three = report_with(vec![
            f("a.rs", 10, "idx"),
            f("a.rs", 20, "idx"),
            f("a.rs", 30, "idx"),
        ]);
        assert_eq!(diff_against(&baseline, &three).expect("diff").new_findings.len(), 1);
    }

    #[test]
    fn fixed_findings_count_as_resolved() {
        let baseline = report_with(vec![f("a.rs", 3, "idx"), f("b.rs", 9, "div")])
            .to_json()
            .render_pretty();
        let current = report_with(vec![f("a.rs", 3, "idx")]);
        let d = diff_against(&baseline, &current).expect("diff");
        assert!(d.is_clean());
        assert_eq!(d.resolved, 1);
    }

    #[test]
    fn garbage_baseline_is_an_error() {
        let report = report_with(Vec::new());
        assert!(diff_against("not json", &report).is_err());
        assert!(diff_against("{\"tool\": \"other\"}", &report).is_err());
    }
}
