//! The hermeticity rule: every `Cargo.toml` must keep the workspace
//! self-contained.
//!
//! This generalizes (and at the workspace level subsumes) the manifest half
//! of `tests/hermetic.rs`: every dependency entry must be a `path`-based
//! workspace crate (or defer to `[workspace.dependencies]`, whose entries
//! are themselves checked), no `[build-dependencies]` section may exist at
//! all, no `build = "…"` script may be declared, and `[features]` must not
//! pull optional externals via `dep:` names that are not declared path
//! dependencies. The TOML subset parsed here is the same minimal slice the
//! manifests actually use; a `#` comment starts only outside quoted
//! strings.
//!
//! The escape hatch works in manifests too, as a TOML comment:
//! `# abs-lint: allow(hermeticity) -- <justification>` on the offending
//! line or the line above.

use crate::rules::{Allow, Finding, Rule};

/// Dependency sections whose entries must be path-based.
const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "workspace.dependencies"];

/// Scans one manifest. Returns surviving findings (allows applied) and the
/// well-formed allow directives found.
pub fn scan_manifest(rel_path: &str, text: &str) -> (Vec<Finding>, Vec<Allow>) {
    let (mut findings, allows) = scan_manifest_raw(rel_path, text);
    findings.retain(|f| !allows.iter().any(|a| a.covers(f.rule, f.line)));
    (findings, allows)
}

/// Like [`scan_manifest`] but without allow suppression, for the
/// stale-allow analysis in [`crate::lint_workspace`].
pub fn scan_manifest_raw(rel_path: &str, text: &str) -> (Vec<Finding>, Vec<Allow>) {
    let mut findings = Vec::new();
    let mut allows = Vec::new();
    let mut section = String::new();
    let mut declared_deps: Vec<String> = Vec::new();

    let finding = |line: usize, message: String| {
        let line = u32::try_from(line).unwrap_or(u32::MAX);
        Finding::new(Rule::Hermeticity, rel_path, line, message)
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let (code, comment) = split_toml_comment(raw);
        if let Some(comment) = comment {
            if let Some(allow) =
                parse_toml_directive(rel_path, u32::try_from(line_no).unwrap_or(u32::MAX), comment)
            {
                match allow {
                    Ok(a) => allows.push(a),
                    Err(f) => findings.push(f),
                }
            }
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        if code.starts_with('[') {
            section = code.trim_matches(['[', ']']).to_string();
            if section == "build-dependencies"
                || (section.starts_with("target.") && section.ends_with(".build-dependencies"))
            {
                findings.push(finding(
                    line_no,
                    format!("`[{section}]` is forbidden: build scripts can reach outside the workspace"),
                ));
            }
            continue;
        }
        let Some((key, value)) = code.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if section == "package" && key == "build" {
            findings.push(finding(
                line_no,
                format!("`build = {value}` declares a build script; the hermetic build forbids them"),
            ));
        }
        if DEP_SECTIONS.contains(&section.as_str()) {
            declared_deps.push(key.trim_end_matches(".workspace").trim().to_string());
            if !dep_is_hermetic(key, value) {
                findings.push(finding(
                    line_no,
                    format!(
                        "`{key} = {value}` is not a path-based workspace dependency; \
                         only in-tree `path`/`workspace = true` deps are allowed"
                    ),
                ));
            }
            for banned in ["git", "registry", "version"] {
                if spec_field(value, banned).is_some() {
                    findings.push(finding(
                        line_no,
                        format!("dependency `{key}` names `{banned} = …`, which resolves outside the workspace"),
                    ));
                }
            }
        }
        if section == "features" && value.contains("dep:") {
            for part in value.trim_matches(['[', ']']).split(',') {
                let part = part.trim().trim_matches('"');
                if let Some(dep) = part.strip_prefix("dep:") {
                    if !declared_deps.iter().any(|d| d == dep) {
                        findings.push(finding(
                            line_no,
                            format!(
                                "feature `{key}` pulls `dep:{dep}`, which is not a declared \
                                 path dependency"
                            ),
                        ));
                    }
                }
            }
        }
    }

    (findings, allows)
}

/// Whether one dependency entry is hermetic: an inline table with a `path`,
/// a `workspace = true` deferral, or the `name.workspace = true` shorthand.
fn dep_is_hermetic(key: &str, value: &str) -> bool {
    key.ends_with(".workspace")
        || spec_field(value, "path").is_some()
        || spec_field(value, "workspace") == Some("true".to_string())
}

/// Extracts `field = value` from an inline table like
/// `{ path = "crates/sim", optional = true }`; string values are unquoted.
pub fn spec_field(spec: &str, field: &str) -> Option<String> {
    let body = spec.trim().strip_prefix('{')?.strip_suffix('}')?;
    for part in body.split(',') {
        let (k, v) = part.split_once('=')?;
        if k.trim() == field {
            return Some(v.trim().trim_matches('"').to_string());
        }
    }
    None
}

/// Splits a TOML line at the first `#` that sits outside a quoted string.
fn split_toml_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..idx], Some(&line[idx..])),
            _ => {}
        }
    }
    (line, None)
}

/// Parses an allow directive out of a TOML comment, if it is one.
fn parse_toml_directive(
    rel_path: &str,
    line: u32,
    comment: &str,
) -> Option<Result<Allow, Finding>> {
    let body = comment.trim_start_matches('#').trim_start();
    if !body.starts_with("abs-lint:") {
        return None;
    }
    // Reuse the Rust-comment grammar by handing it the body as a line
    // comment: same syntax, same malformed-directive diagnostics.
    let (findings, allows) =
        crate::rules::scan_source(rel_path, &format!("// {body}\n"), crate::rules::SourcePolicy::test_code());
    if let Some(a) = allows.into_iter().next() {
        return Some(Ok(Allow { line, ..a }));
    }
    if let Some(f) = findings.into_iter().next() {
        return Some(Err(Finding { line, ..f }));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Finding> {
        scan_manifest("Cargo.toml", text, ).0
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "\
[dependencies]
abs-sim.workspace = true
abs-net = { path = \"../net\" }

[dev-dependencies]
abs-exec = { workspace = true }
";
        assert!(findings(text).is_empty(), "{:?}", findings(text));
    }

    #[test]
    fn registry_and_git_deps_are_flagged_with_lines() {
        let text = "\
[dependencies]
serde = \"1.0\"
rand = { git = \"https://github.com/rust-random/rand\" }
";
        let f = findings(text);
        assert!(f.iter().any(|x| x.line == 2));
        assert!(f.iter().any(|x| x.line == 3 && x.message.contains("git")));
        assert!(f.iter().all(|x| x.rule == Rule::Hermeticity));
    }

    #[test]
    fn build_dependencies_section_is_flagged_even_when_empty() {
        let f = findings("[build-dependencies]\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("build scripts"));
        let f = findings("[target.'cfg(unix)'.build-dependencies]\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn build_script_key_is_flagged() {
        let f = findings("[package]\nname = \"x\"\nbuild = \"build.rs\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn feature_pulling_undeclared_dep_is_flagged() {
        let text = "\
[dependencies]
abs-sim.workspace = true

[features]
extra = [\"dep:serde\", \"abs-sim/std\"]
ok = [\"dep:abs-sim\"]
";
        let f = findings(text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("dep:serde"));
    }

    #[test]
    fn toml_allow_directive_suppresses() {
        let text = "\
[dependencies]
# abs-lint: allow(hermeticity) -- vendored checkout, path appears at build time
weird = \"1.0\"
";
        let (f, allows) = scan_manifest("Cargo.toml", text);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].line, 2);
    }

    #[test]
    fn malformed_toml_directive_is_a_finding() {
        let text = "# abs-lint: allow(hermeticity)\n";
        let (f, _) = scan_manifest("Cargo.toml", text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AllowGrammar);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let (code, comment) = split_toml_comment("repo = \"https://x/#frag\" # real");
        assert!(code.contains("#frag"));
        assert_eq!(comment, Some("# real"));
    }
}
