//! `abs-lint` — lint the workspace for determinism, hermeticity, panic-path
//! and unsafe hygiene.
//!
//! ```text
//! cargo run -p abs-lint                  # text diagnostics, exit 1 on findings
//! cargo run -p abs-lint -- --json        # also write repro_out/lint_report.json
//! cargo run -p abs-lint -- --diff        # gate on NEW findings vs the baseline
//! cargo run -p abs-lint -- --root DIR    # lint another workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut diff = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--diff" => diff = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "abs-lint — hermetic static analysis for the workspace\n\n\
                     usage: abs-lint [--json] [--diff] [--root DIR]\n\n\
                     --json      write repro_out/lint_report.json (and print it)\n\
                     --diff      compare against repro_out/baselines/lint_report.json\n\
                     \x20           and fail on any NEW finding, of any severity\n\
                     --root DIR  workspace root to lint (default: this repo)\n\n\
                     rules: determinism, hermeticity, panic-path, unsafe-audit\n\
                     escape hatch (in source): abs-lint: allow(<rule>) -- <justification>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = root.unwrap_or_else(abs_lint::default_root);
    let report = match abs_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("abs-lint: {message}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.to_text());
    if json {
        match report.write_json(&root.join("repro_out")) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("abs-lint: cannot write JSON report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if diff {
        return match abs_lint::diff::diff_against_baseline(&root, &report) {
            Ok(result) => {
                print!("{}", result.to_text());
                if result.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(message) => {
                eprintln!("abs-lint --diff: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
