//! Workspace symbol table and intra-crate call graph.
//!
//! [`CallGraph::build`] walks every [`ParsedFile`], records one
//! [`FnUnit`] per function item (free fns, impl methods, trait default
//! methods, fns inside inline modules), extracts an over-approximate set
//! of callee names from each body (`name(…)`, `Path::name(…)`, and
//! `.method(…)` all contribute `name`), and then floods reachability from
//! the kernel hot loops: every non-test `run_with`/`step` defined in a
//! simulation crate.
//!
//! Resolution is *name-based within one crate*: a call edge `f → g`
//! exists when a unit named `g` lives in the same crate as `f`. This
//! over-approximates (same-named methods on different types merge) and
//! under-approximates across crate boundaries — both acceptable for the
//! consumer, [`crate::sem`]'s panic-deep severity elevation, where a
//! false "hot" merely turns an info finding into a warn.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Delim, Item, ItemKind, Node, NodeKind};
use crate::sem::{is_test_attr, ParsedFile, KEYWORDS};
use crate::tokenizer::TokKind;

/// One function item in the workspace.
#[derive(Debug, Clone)]
pub struct FnUnit {
    /// Index of the defining file in the `files` slice passed to
    /// [`CallGraph::build`].
    pub file: usize,
    /// The crate the file belongs to ([`ParsedFile::crate_name`]).
    pub crate_name: String,
    /// The function's name.
    pub name: String,
    /// The impl/trait self type, for methods.
    pub self_ty: Option<String>,
    /// `span.lo` of the fn item — the key [`crate::sem::scan_file`] uses
    /// to look up hotness.
    pub span_lo: usize,
    /// Whether the fn lives under a test attribute/module.
    pub is_test: bool,
    /// Callee names extracted from the body (over-approximate).
    pub calls: BTreeSet<String>,
}

/// The built graph plus the hot-reachability closure.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function unit, in discovery order.
    pub fns: Vec<FnUnit>,
    hot: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph and floods hotness from `run_with`/`step` roots.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut fns: Vec<FnUnit> = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            collect_fns(pf, fi, &pf.ast.items, None, false, &mut fns);
        }

        // name → unit indices, per crate.
        let mut by_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, unit) in fns.iter().enumerate() {
            by_name
                .entry((unit.crate_name.as_str(), unit.name.as_str()))
                .or_default()
                .push(i);
        }

        let mut hot = vec![false; fns.len()];
        let mut worklist: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, u)| {
                !u.is_test
                    && matches!(u.name.as_str(), "run_with" | "step")
                    && files[u.file].policy.determinism
            })
            .map(|(i, _)| i)
            .collect();
        for &root in &worklist {
            hot[root] = true;
        }
        while let Some(at) = worklist.pop() {
            let crate_name = fns[at].crate_name.clone();
            let callees: Vec<usize> = fns[at]
                .calls
                .iter()
                .flat_map(|name| {
                    by_name
                        .get(&(crate_name.as_str(), name.as_str()))
                        .into_iter()
                        .flatten()
                        .copied()
                })
                .collect();
            for callee in callees {
                if !hot[callee] {
                    hot[callee] = true;
                    worklist.push(callee);
                }
            }
        }
        CallGraph { fns, hot }
    }

    /// The `span.lo` keys of every hot fn in file `file` — the shape
    /// [`crate::sem::scan_file`] consumes.
    pub fn hot_fns_of(&self, file: usize) -> BTreeSet<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|&(i, u)| self.hot[i] && u.file == file)
            .map(|(_, u)| u.span_lo)
            .collect()
    }

    /// Whether any unit is hot (used by the report summary and tests).
    pub fn hot_count(&self) -> usize {
        self.hot.iter().filter(|&&h| h).count()
    }
}

fn collect_fns(
    pf: &ParsedFile,
    fi: usize,
    items: &[Item],
    self_ty: Option<&str>,
    in_test: bool,
    out: &mut Vec<FnUnit>,
) {
    for item in items {
        let test = in_test || item.attrs.iter().any(|a| is_test_attr(&a.body));
        match &item.kind {
            ItemKind::Fn(f) => {
                let mut calls = BTreeSet::new();
                if let Some(body) = &f.body {
                    collect_calls(pf, body, &mut calls);
                }
                out.push(FnUnit {
                    file: fi,
                    crate_name: pf.crate_name().to_string(),
                    name: f.name.clone(),
                    self_ty: self_ty.map(str::to_string),
                    span_lo: item.span.lo,
                    is_test: test,
                    calls,
                });
            }
            ItemKind::Impl(b) => collect_fns(pf, fi, &b.items, Some(&b.self_ty), test, out),
            ItemKind::Trait(b) => collect_fns(pf, fi, &b.items, Some(&b.name), test, out),
            ItemKind::Mod(b) => {
                if let Some(items) = &b.items {
                    collect_fns(pf, fi, items, None, test, out);
                }
            }
            _ => {}
        }
    }
}

/// Extracts callee names from a body subtree: an identifier leaf directly
/// followed by a paren group is a call, unless the identifier is a
/// keyword, a macro name (next token `!`), or a nested `fn` definition.
fn collect_calls(pf: &ParsedFile, node: &Node, out: &mut BTreeSet<String>) {
    match &node.kind {
        NodeKind::Leaf => {}
        NodeKind::Group { children, .. } => collect_calls_in(pf, children, out),
        NodeKind::Ctrl {
            head, body, chain, ..
        } => {
            collect_calls_in(pf, head, out);
            if let Some(body) = body {
                collect_calls(pf, body, out);
            }
            for part in chain {
                collect_calls(pf, part, out);
            }
        }
    }
}

fn collect_calls_in(pf: &ParsedFile, sibs: &[Node], out: &mut BTreeSet<String>) {
    for (i, node) in sibs.iter().enumerate() {
        match &node.kind {
            NodeKind::Leaf => {
                let tok = &pf.tokens[node.span.hi - 1];
                if tok.kind != TokKind::Ident || KEYWORDS.contains(&tok.text.as_str()) {
                    continue;
                }
                let followed_by_paren = matches!(
                    sibs.get(i + 1).map(|n| &n.kind),
                    Some(NodeKind::Group {
                        delim: Delim::Paren,
                        ..
                    })
                );
                let after_fn_kw = i > 0
                    && matches!(sibs[i - 1].kind, NodeKind::Leaf)
                    && pf.tokens[sibs[i - 1].span.hi - 1].text == "fn";
                if followed_by_paren && !after_fn_kw {
                    out.insert(tok.text.clone());
                }
            }
            _ => collect_calls(pf, node, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourcePolicy;

    fn sim_file(rel: &str, src: &str) -> ParsedFile {
        ParsedFile::parse(rel, src, SourcePolicy::sim_crate())
    }

    #[test]
    fn calls_are_extracted_from_bodies() {
        let pf = sim_file(
            "crates/core/src/a.rs",
            "fn run_with(&self) { self.helper(); free(self.x); mac!(not_a_call); }",
        );
        let graph = CallGraph::build(&[pf]);
        assert_eq!(graph.fns.len(), 1);
        let calls: Vec<&str> = graph.fns[0].calls.iter().map(String::as_str).collect();
        assert_eq!(calls, ["free", "helper"]);
    }

    #[test]
    fn hotness_floods_transitively_within_a_crate() {
        let a = sim_file(
            "crates/core/src/a.rs",
            "impl Sim { fn run_with(&self) { self.tick(); } fn tick(&self) { leafy(); } fn cold(&self) {} }",
        );
        let b = sim_file("crates/core/src/b.rs", "pub fn leafy() {}");
        let other = sim_file("crates/net/src/c.rs", "pub fn leafy() {}");
        let graph = CallGraph::build(&[a, b, other]);
        let names: Vec<(&str, bool)> = graph
            .fns
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.as_str(), graph.hot[i]))
            .collect();
        assert_eq!(
            names,
            [
                ("run_with", true),
                ("tick", true),
                ("cold", false),
                ("leafy", true),  // same crate: reached
                ("leafy", false), // other crate: name resolution stops
            ]
        );
    }

    #[test]
    fn test_fns_and_harness_crates_are_not_roots() {
        let test_root = sim_file(
            "crates/core/src/a.rs",
            "#[cfg(test)]\nmod tests { fn run_with() { helper(); } fn helper() {} }",
        );
        let harness = ParsedFile::parse(
            "crates/bench/src/h.rs",
            "fn run_with() { helper(); } fn helper() {}",
            SourcePolicy::harness_crate(),
        );
        let graph = CallGraph::build(&[test_root, harness]);
        assert_eq!(graph.hot_count(), 0);
    }

    #[test]
    fn hot_fns_of_returns_span_keys() {
        let pf = sim_file(
            "crates/sync/src/a.rs",
            "pub fn step(&mut self) { advance(); }\npub fn advance() {}\npub fn unrelated() {}\n",
        );
        let ast_spans: Vec<usize> = pf.ast.items.iter().map(|i| i.span.lo).collect();
        let graph = CallGraph::build(&[pf]);
        let hot = graph.hot_fns_of(0);
        assert!(hot.contains(&ast_spans[0]));
        assert!(hot.contains(&ast_spans[1]));
        assert!(!hot.contains(&ast_spans[2]));
    }
}
