//! A lossless, comment/string/raw-string-aware Rust tokenizer.
//!
//! The rule engine needs exactly one guarantee from this module: an
//! identifier token is reported **only** when it is real code — never when
//! the same spelling occurs inside a line comment, a (nested) block
//! comment, a string literal, a raw string with any number of `#` guards, a
//! byte/C string, or a char literal. Everything else about Rust's grammar
//! is irrelevant to the lint rules, so the tokenizer stays deliberately
//! small: it partitions the source into [`Token`]s whose concatenated
//! `text` reproduces the input byte-for-byte (the `forall!` property in
//! `tests/` checks this round-trip on generated nestings).
//!
//! The tokenizer is lenient: unterminated literals or comments extend to
//! end-of-file instead of erroring, so the lint can still scan a file that
//! `rustc` would reject.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` including doc comments `///` and `//!` (newline excluded).
    LineComment,
    /// `/* … */` including nested block comments.
    BlockComment,
    /// `"…"`, `b"…"`, `c"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#`.
    RawStr,
    /// `'a'`, `'\n'`, `b'\x41'`, `'\u{1F600}'`.
    Char,
    /// `'a`, `'static` (and loop labels).
    Lifetime,
    /// `foo`, `HashMap`, raw identifiers `r#type`.
    Ident,
    /// `42`, `0xFF_u64`, `1.5e-3` (approximate; never misread as a string
    /// or comment opener, which is all that matters here).
    Number,
    /// Any single other character.
    Punct,
}

/// One token: kind, 1-based line of its first character, and its exact
/// source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// The exact source slice.
    pub text: String,
}

impl Token {
    /// Whether the token participates in code (not whitespace or comments).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// Splits `src` into tokens whose concatenated text is exactly `src`.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => self.whitespace(),
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                'r' => self.r_prefixed(),
                'b' | 'c' => self.bc_prefixed(c),
                c if is_ident_start(c) => self.ident(0),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        debug_assert_eq!(
            self.tokens.iter().map(|t| t.text.len()).sum::<usize>(),
            self.src.len()
        );
        self.tokens
    }

    /// Pushes a token covering chars `[start, self.pos)`, starting at
    /// `start_line`.
    fn push(&mut self, kind: TokKind, start: usize, start_line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token {
            kind,
            line: start_line,
            text,
        });
    }

    /// Advances one char, updating the line counter.
    fn bump(&mut self) {
        if self.chars[self.pos] == '\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn whitespace(&mut self) {
        let (start, line) = (self.pos, self.line);
        while matches!(self.peek(0), Some(c) if c.is_whitespace()) {
            self.bump();
        }
        self.push(TokKind::Whitespace, start, line);
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while matches!(self.peek(0), Some(c) if c != '\n') {
            self.bump();
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: extend to EOF
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    /// A `"…"` string whose opening quote is `prefix_len` chars after the
    /// current position (0 for plain strings, 1 for `b"…"`/`c"…"`).
    fn string(&mut self, prefix_len: usize) {
        let (start, line) = (self.pos, self.line);
        for _ in 0..=prefix_len {
            self.bump(); // prefix chars plus the opening quote
        }
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump(); // the escaped char, whatever it is
                    }
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// A raw string whose `r` sits `prefix_len` chars after the current
    /// position (0 for `r"…"`, 1 for `br"…"`/`cr"…"`). The caller has
    /// verified the shape (`r` + hashes + `"`).
    fn raw_string(&mut self, prefix_len: usize) {
        let (start, line) = (self.pos, self.line);
        for _ in 0..=prefix_len {
            self.bump(); // prefix chars plus the `r`
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'body: loop {
            match self.peek(0) {
                Some('"') => {
                    // A close candidate: quote followed by `hashes` hashes.
                    for ahead in 0..hashes {
                        if self.peek(1 + ahead) != Some('#') {
                            self.bump(); // just a quote inside the body
                            continue 'body;
                        }
                    }
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        self.push(TokKind::RawStr, start, line);
    }

    /// Whether position `at` begins a raw-string opener: `r` followed by
    /// zero or more `#` then `"`.
    fn raw_start_at(&self, at: usize) -> bool {
        if self.peek(at) != Some('r') {
            return false;
        }
        let mut ahead = at + 1;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    /// `r…`: raw string, raw identifier, or a plain ident starting with r.
    fn r_prefixed(&mut self) {
        if self.raw_start_at(0) {
            self.raw_string(0);
        } else if self.peek(1) == Some('#')
            && matches!(self.peek(2), Some(c) if is_ident_start(c))
        {
            self.ident(2); // raw identifier r#foo
        } else {
            self.ident(0);
        }
    }

    /// `b…` / `c…`: byte/C string or char literal, or a plain ident.
    fn bc_prefixed(&mut self, first: char) {
        match self.peek(1) {
            Some('"') => self.string(1),
            Some('\'') if first == 'b' => {
                let (start, line) = (self.pos, self.line);
                self.bump(); // b
                self.char_literal_body();
                self.push(TokKind::Char, start, line);
            }
            Some('r') if first == 'b' || first == 'c' => {
                if self.raw_start_at(1) {
                    self.raw_string(1);
                } else {
                    self.ident(0);
                }
            }
            _ => self.ident(0),
        }
    }

    /// An identifier whose first `skip` chars are already validated (the
    /// `r#` of a raw identifier).
    fn ident(&mut self, skip: usize) {
        let (start, line) = (self.pos, self.line);
        for _ in 0..skip {
            self.bump();
        }
        self.bump(); // the validated start char
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        self.push(TokKind::Ident, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump();
        loop {
            match self.peek(0) {
                // `1..10` stays a range; `1.5` consumes the dot.
                Some('.') if matches!(self.peek(1), Some(c) if c.is_ascii_digit()) => {
                    self.bump();
                }
                // Covers hex digits, `_` separators, type suffixes and the
                // `e` of exponents; `1e-3`'s sign is left as Punct, which
                // is harmless (nothing matches on Number/Punct content).
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => self.bump(),
                _ => break,
            }
        }
        self.push(TokKind::Number, start, line);
    }

    /// `'…`: a char literal or a lifetime/label.
    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            // `'x'` (any single non-quote char then a quote) is a char
            // literal; otherwise `'x…` is a lifetime.
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => false,
        };
        if is_char {
            self.char_literal_body();
            self.push(TokKind::Char, start, line);
        } else {
            self.bump(); // '
            while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                self.bump();
            }
            self.push(TokKind::Lifetime, start, line);
        }
    }

    /// Consumes `'…'` from the opening quote (shared by char and byte-char
    /// literals); the caller pushes the token.
    fn char_literal_body(&mut self) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                match self.peek(0) {
                    // `\u{…}`: consume through the closing brace.
                    Some('u') => {
                        self.bump();
                        while matches!(self.peek(0), Some(c) if c != '}' && c != '\'') {
                            self.bump();
                        }
                        if self.peek(0) == Some('}') {
                            self.bump();
                        }
                    }
                    // `\x41`, `\n`, `\'`, …: the escape char, then any
                    // hex digits fall through to the closing-quote scan.
                    Some(_) => self.bump(),
                    None => return,
                }
            }
            Some(_) => self.bump(),
            None => return,
        }
        // Consume through the closing quote (tolerating `\x41`'s digits).
        while matches!(self.peek(0), Some(c) if c != '\'') {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump();
        self.push(TokKind::Punct, start, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// The round-trip invariant: concatenated token text reproduces the input.
pub fn round_trips(src: &str) -> bool {
    tokenize(src).iter().map(|t| t.text.as_str()).collect::<String>() == src
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_in_comments_and_strings_are_not_code() {
        let src = r####"
            // HashMap in a line comment
            /* HashMap /* nested HashMap */ still comment */
            let s = "HashMap in a string \" with escaped quote HashMap";
            let r = r#"HashMap in a raw string "quoted" here"#;
            let b = b"HashMap bytes";
            let real = BTreeMap::new();
        "####;
        let idents = code_idents(src);
        assert!(!idents.iter().any(|i| i == "HashMap"), "{idents:?}");
        assert!(idents.iter().any(|i| i == "BTreeMap"));
        assert!(round_trips(src));
    }

    #[test]
    fn raw_string_hash_guards() {
        let src = r####"let x = r##"ends with "# not yet"##; after()"####;
        let idents = code_idents(src);
        assert_eq!(idents, ["let", "x", "after"]);
        assert!(round_trips(src));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let u = '\\u{1F600}'; 'outer: loop { break 'outer; } }";
        let toks = kinds(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, ["'x'", "'\\''", "'\\u{1F600}'"]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer", "'outer"]);
        assert!(round_trips(src));
    }

    #[test]
    fn quotes_inside_char_literal_do_not_open_strings() {
        let src = "let q = '\"'; real()";
        assert_eq!(code_idents(src), ["let", "q", "real"]);
        assert!(round_trips(src));
    }

    #[test]
    fn byte_char_with_escape() {
        let src = r"let b = b'\x41'; let n = b'\n'; done()";
        assert_eq!(code_idents(src), ["let", "b", "let", "n", "done"]);
        assert!(round_trips(src));
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = r#match; also_r = 1;";
        let idents = code_idents(src);
        assert_eq!(idents, ["let", "r#type", "r#match", "also_r"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\"\nc";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 6);
    }

    #[test]
    fn unterminated_literals_extend_to_eof() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed\""] {
            assert!(round_trips(src), "{src:?}");
        }
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { x[1.5e3 as usize] }";
        assert!(round_trips(src));
        let nums: Vec<_> = tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e3"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// uses `HashMap` like this\n//! inner HashMap doc\nfn f() {}";
        assert!(code_idents(src).iter().all(|i| i != "HashMap"));
    }
}
