//! Workspace discovery: which files exist and which rules govern each.
//!
//! Scope map (the rationale is in `DESIGN.md` §10):
//!
//! | location | determinism | panic-path | unsafe-audit |
//! |---|---|---|---|
//! | `crates/{core,net,sync,model,coherence,trace,sim,load,insight}/src` | ✔ | ✔ | ✔ |
//! | other `crates/*/src`, root `src/` | ✘ | ✔ | ✔ |
//! | `tests/`, `benches/`, `examples/` anywhere | ✘ | ✘ | ✔ |
//!
//! Wall-clock reads are thereby allowed in `exec`/`bench` timing code (they
//! are harness crates), and benches/examples may unwrap freely. Every
//! `Cargo.toml` gets the hermeticity pass, and a crate-level `build.rs` is
//! itself a hermeticity finding. Directories named `fixtures` are skipped:
//! they hold deliberately-violating lint inputs. Traversal is sorted so
//! reports are byte-stable across filesystems.

use std::path::{Path, PathBuf};

use crate::rules::{Finding, Rule, SourcePolicy};

/// Directory names of the simulation crates (determinism rule applies).
pub const SIM_CRATES: &[&str] = &[
    "core",
    "net",
    "sync",
    "model",
    "coherence",
    "trace",
    "sim",
    "load",
    "insight",
];

/// One Rust source file plus the policy governing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEntry {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path (forward slashes) used in diagnostics.
    pub rel: String,
    /// Which rules apply.
    pub policy: SourcePolicy,
}

/// The discovered workspace.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Every `.rs` file with its policy, sorted by relative path.
    pub sources: Vec<SourceEntry>,
    /// Every `Cargo.toml`, sorted (root first).
    pub manifests: Vec<(PathBuf, String)>,
    /// Findings produced during discovery itself (e.g. a `build.rs`).
    pub findings: Vec<Finding>,
}

impl Workspace {
    /// Walks the workspace rooted at `root`.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let mut sources = Vec::new();
        let mut manifests = Vec::new();
        let mut findings = Vec::new();

        let root_manifest = root.join("Cargo.toml");
        if !root_manifest.is_file() {
            return Err(format!(
                "{} is not a workspace root (no Cargo.toml)",
                root.display()
            ));
        }
        manifests.push((root_manifest, "Cargo.toml".to_string()));

        // Root-level library sources, tests, benches and examples.
        collect_rs(root, &root.join("src"), SourcePolicy::harness_crate(), &mut sources)?;
        for dir in ["tests", "benches", "examples"] {
            collect_rs(root, &root.join(dir), SourcePolicy::test_code(), &mut sources)?;
        }

        // Per-crate sources.
        let crates_dir = root.join("crates");
        for name in sorted_dir_names(&crates_dir)? {
            let crate_root = crates_dir.join(&name);
            let manifest = crate_root.join("Cargo.toml");
            if manifest.is_file() {
                manifests.push((manifest, format!("crates/{name}/Cargo.toml")));
            }
            if crate_root.join("build.rs").is_file() {
                findings.push(Finding::new(
                    Rule::Hermeticity,
                    format!("crates/{name}/build.rs"),
                    1,
                    "build scripts are forbidden: they run arbitrary code at \
                     build time and can reach outside the workspace",
                ));
            }
            let policy = if SIM_CRATES.contains(&name.as_str()) {
                SourcePolicy::sim_crate()
            } else {
                SourcePolicy::harness_crate()
            };
            collect_rs(root, &crate_root.join("src"), policy, &mut sources)?;
            for dir in ["tests", "benches", "examples"] {
                collect_rs(root, &crate_root.join(dir), SourcePolicy::test_code(), &mut sources)?;
            }
        }

        sources.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            sources,
            manifests,
            findings,
        })
    }
}

/// The sorted subdirectory names of `dir` (empty if it does not exist).
fn sorted_dir_names(dir: &Path) -> Result<Vec<String>, String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(Vec::new());
    };
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        if entry.path().is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    Ok(names)
}

/// Recursively collects `.rs` files under `dir`, skipping `fixtures`
/// directories (deliberately-violating lint inputs) and anything hidden.
fn collect_rs(
    root: &Path,
    dir: &Path,
    policy: SourcePolicy,
    out: &mut Vec<SourceEntry>,
) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // absent dirs (not every crate has benches/) are fine
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') || name == "fixtures" || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(root, &path, policy, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceEntry { path, rel, policy });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn this_workspace() -> Workspace {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        Workspace::discover(&root).expect("workspace discovers")
    }

    #[test]
    fn discovers_all_crates_and_manifests() {
        let ws = this_workspace();
        assert!(ws.manifests.len() >= 12, "{}", ws.manifests.len());
        assert_eq!(ws.manifests[0].1, "Cargo.toml");
        assert!(ws
            .manifests
            .iter()
            .any(|(_, rel)| rel == "crates/lint/Cargo.toml"));
    }

    #[test]
    fn sim_crates_get_the_determinism_rule_and_harness_crates_do_not() {
        let ws = this_workspace();
        let policy_of = |rel: &str| {
            ws.sources
                .iter()
                .find(|s| s.rel == rel)
                .unwrap_or_else(|| panic!("{rel} not discovered"))
                .policy
        };
        assert!(policy_of("crates/coherence/src/directory.rs").determinism);
        assert!(policy_of("crates/net/src/packet.rs").determinism);
        assert!(policy_of("crates/load/src/engine.rs").determinism);
        assert!(!policy_of("crates/exec/src/engine.rs").determinism);
        assert!(policy_of("crates/exec/src/engine.rs").panic_path);
        assert!(!policy_of("crates/bench/benches/kernel_speedup.rs").panic_path);
        assert!(policy_of("src/lib.rs").panic_path);
    }

    #[test]
    fn fixture_directories_are_skipped() {
        let ws = this_workspace();
        assert!(
            ws.sources.iter().all(|s| !s.rel.contains("/fixtures/")),
            "fixtures must not be linted as workspace sources"
        );
    }

    #[test]
    fn traversal_is_sorted() {
        let ws = this_workspace();
        let rels: Vec<&String> = ws.sources.iter().map(|s| &s.rel).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }

    #[test]
    fn non_workspace_dir_is_an_error() {
        assert!(Workspace::discover(Path::new("/definitely/not/here")).is_err());
    }
}
