//! Semantic rules over the parsed AST: the four rule families that token
//! scanning cannot express.
//!
//! * **arith** ([`Rule::Arith`], error) — truncating `as` casts to a
//!   narrower integer with a non-literal operand, and unchecked `+`/`*`
//!   (including `+=`/`*=`) whose operand is an accounting counter
//!   ([`ACCOUNTING_VOCAB`]): the cycle/access/id totals the paper's
//!   exhibits are built from. At N = 2²⁰ a single silent truncation
//!   corrupts an exhibit, so these demand `checked_`/`saturating_`/
//!   widening arithmetic or a justified allow.
//! * **determinism-flow** ([`Rule::DeterminismFlow`], warn) — RNG draws
//!   inside conditionally-executed contexts (the draw *order* becomes
//!   data-dependent, which endangers cross-kernel bit-identity), unstable
//!   sorts, and float arithmetic cast back into integer sim state.
//! * **panic-deep** ([`Rule::PanicDeep`], info; elevated to warn when the
//!   enclosing fn is reachable from a kernel hot loop per
//!   [`crate::callgraph`]) — slice indexing with a non-literal index,
//!   integer division by a non-literal divisor, and `unreachable!` in
//!   library non-test code.
//! * **contract-xref** ([`Rule::ContractXref`], error) — every type whose
//!   impl defines `run_with` must be named by a kernel-equivalence test
//!   (a test scope containing a `kernels_*` test fn), keeping the
//!   bit-identity contract suite in lockstep with the simulators.
//!
//! All checks walk sibling lists of the structural expression tree, so a
//! pattern inside a string, comment, or `#[cfg(test)]` region can never
//! fire.

use std::collections::BTreeSet;

use crate::parser::{parse, Ast, Delim, Item, ItemKind, Node, NodeKind, Span};
use crate::rules::{Finding, Rule, Severity, SourcePolicy};
use crate::tokenizer::{tokenize, TokKind, Token};

/// One source file, tokenized and parsed, ready for semantic scanning.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// The rule policy [`crate::workspace`] assigned to the file.
    pub policy: SourcePolicy,
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// The parse over it.
    pub ast: Ast,
}

impl ParsedFile {
    /// Tokenizes and parses one source file.
    pub fn parse(rel: &str, text: &str, policy: SourcePolicy) -> Self {
        let tokens = tokenize(text);
        let ast = parse(&tokens);
        ParsedFile {
            rel: rel.to_string(),
            policy,
            tokens,
            ast,
        }
    }

    /// The crate the file belongs to (`"core"` for
    /// `crates/core/src/...`; `"root"` for the facade and root tests).
    pub fn crate_name(&self) -> &str {
        self.rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("root")
    }

    /// Source text of a span.
    pub fn text_of(&self, span: Span) -> String {
        self.tokens[span.lo..span.hi]
            .iter()
            .map(|t| t.text.as_str())
            .collect()
    }

    /// 1-based line of the first code token in `span` (falls back to the
    /// span's first token).
    pub fn first_code_line(&self, span: Span) -> u32 {
        self.tokens[span.lo..span.hi]
            .iter()
            .find(|t| t.is_code())
            .or_else(|| self.tokens.get(span.lo))
            .map_or(1, |t| t.line)
    }
}

/// Counters whose silent overflow or truncation corrupts an exhibit: the
/// access/cycle/occupancy accounting vocabulary shared by the sim crates.
pub const ACCOUNTING_VOCAB: &[&str] = &[
    "accesses",
    "total_accesses",
    "var_accesses",
    "sync_accesses",
    "presented",
    "served",
    "denied",
    "busy_cycles",
    "idle_cycles",
    "cycles",
    "completion",
    "queued",
    "flag_set_at",
];

/// Integer types an `as` cast may truncate into.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Integer targets for the float→int determinism check (any width: the
/// hazard is the float *origin*, not the destination width).
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Method names that draw from the deterministic RNG (`abs_sim::rng`).
const RNG_DRAWS: &[&str] = &[
    "next_u64",
    "next_below",
    "next_range_u64",
    "next_below_usize",
    "next_f64",
    "next_bool",
    "fill_below",
    "shuffle",
    "choose",
    "uniform_arrivals",
];

/// Rust keywords (idents that are never call or operand names).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

/// Whether an attribute body gates an item to test builds.
pub(crate) fn is_test_attr(body: &str) -> bool {
    body == "test"
        || body == "cfg(test)"
        || body.starts_with("cfg(test,")
        || body.starts_with("cfg(all(test")
}

/// Runs the per-file semantic rules. `hot_fns` holds the `span.lo` token
/// index of every fn item in this file that [`crate::callgraph`] found
/// reachable from a kernel hot loop.
pub fn scan_file(pf: &ParsedFile, hot_fns: &BTreeSet<usize>) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_items(pf, &pf.ast.items, false, hot_fns, &mut out);
    out
}

fn scan_items(
    pf: &ParsedFile,
    items: &[Item],
    in_test: bool,
    hot_fns: &BTreeSet<usize>,
    out: &mut Vec<Finding>,
) {
    for item in items {
        let test = in_test || item.attrs.iter().any(|a| is_test_attr(&a.body));
        match &item.kind {
            ItemKind::Fn(f) => {
                if let Some(body) = &f.body {
                    let scanner = Scanner {
                        pf,
                        is_test: test,
                        hot: hot_fns.contains(&item.span.lo),
                        out,
                    };
                    scanner.run(body);
                }
            }
            ItemKind::Impl(b) => scan_items(pf, &b.items, test, hot_fns, out),
            ItemKind::Trait(b) => scan_items(pf, &b.items, test, hot_fns, out),
            ItemKind::Mod(b) => {
                if let Some(items) = &b.items {
                    scan_items(pf, items, test, hot_fns, out);
                }
            }
            _ => {}
        }
    }
}

struct Scanner<'a> {
    pf: &'a ParsedFile,
    is_test: bool,
    hot: bool,
    out: &'a mut Vec<Finding>,
}

impl Scanner<'_> {
    fn run(mut self, body: &Node) {
        if let NodeKind::Group { children, .. } = &body.kind {
            self.siblings(children, 0);
        }
    }

    /// Scans one sibling list with `cond` nested conditional contexts
    /// around it, then recurses.
    fn siblings(&mut self, sibs: &[Node], cond: u32) {
        for (i, node) in sibs.iter().enumerate() {
            match &node.kind {
                NodeKind::Leaf => {
                    self.leaf_checks(sibs, i, cond);
                }
                NodeKind::Group {
                    delim, children, ..
                } => {
                    if *delim == Delim::Bracket {
                        self.indexing_check(sibs, i);
                    }
                    self.siblings(children, cond);
                }
                NodeKind::Ctrl {
                    head, body, chain, ..
                } => {
                    self.siblings(head, cond);
                    if let Some(body) = body {
                        // for/while/loop bodies conditionally skip or
                        // repeat their contents just like if/match arms
                        // do; all five count as conditional contexts.
                        self.descend(body, cond + 1);
                    }
                    for part in chain {
                        self.descend(part, cond + 1);
                    }
                }
            }
        }
    }

    fn descend(&mut self, node: &Node, cond: u32) {
        match &node.kind {
            NodeKind::Leaf => {}
            NodeKind::Group { children, .. } => self.siblings(children, cond),
            NodeKind::Ctrl {
                head, body, chain, ..
            } => {
                self.siblings(head, cond);
                if let Some(body) = body {
                    self.descend(body, cond + 1);
                }
                for part in chain {
                    self.descend(part, cond + 1);
                }
            }
        }
    }

    // ----- token/sibling helpers ----------------------------------------

    fn leaf_token(&self, node: &Node) -> &Token {
        &self.pf.tokens[node.span.hi - 1]
    }

    fn leaf_text(&self, node: &Node) -> Option<&str> {
        match node.kind {
            NodeKind::Leaf => Some(self.leaf_token(node).text.as_str()),
            _ => None,
        }
    }

    fn leaf_kind(&self, node: &Node) -> Option<TokKind> {
        match node.kind {
            NodeKind::Leaf => Some(self.leaf_token(node).kind),
            _ => None,
        }
    }

    fn is_ident(&self, node: &Node) -> bool {
        self.leaf_kind(node) == Some(TokKind::Ident)
            && !KEYWORDS.contains(&self.leaf_token(node).text.as_str())
    }

    /// The code token immediately after token index `at` in the stream.
    fn next_code_text(&self, at: usize) -> &str {
        self.pf.tokens[at + 1..]
            .iter()
            .find(|t| t.is_code())
            .map_or("", |t| t.text.as_str())
    }

    fn push(&mut self, rule: Rule, line: u32, message: String) {
        let mut f = Finding::new(rule, self.pf.rel.clone(), line, message);
        if rule == Rule::PanicDeep && self.hot {
            f.severity = Severity::Warn;
        }
        self.out.push(f);
    }

    /// Terminal identifier of the operand ending at sibling `i`
    /// (exclusive): the callee of a trailing call, or the last field of a
    /// `a.b.c` chain.
    fn terminal_ident_before(&self, sibs: &[Node], i: usize) -> Option<String> {
        let mut j = i.checked_sub(1)?;
        if matches!(
            sibs[j].kind,
            NodeKind::Group {
                delim: Delim::Paren,
                ..
            }
        ) {
            j = j.checked_sub(1)?;
        }
        if self.is_ident(&sibs[j]) {
            return Some(self.leaf_token(&sibs[j]).text.clone());
        }
        None
    }

    /// Terminal identifier of the operand starting at sibling `i`
    /// (inclusive): the last identifier of a `a.b.c(...)` chain.
    fn terminal_ident_after(&self, sibs: &[Node], i: usize) -> Option<String> {
        let mut j = i;
        let mut last = None;
        while j < sibs.len() {
            let node = &sibs[j];
            if self.is_ident(node) {
                last = Some(self.leaf_token(node).text.clone());
                j += 1;
                continue;
            }
            match (self.leaf_text(node), &node.kind) {
                (Some("."), _) | (Some(":"), _) | (Some("self"), _) | (Some("Self"), _) => j += 1,
                (
                    _,
                    NodeKind::Group {
                        delim: Delim::Paren,
                        ..
                    },
                ) if last.is_some() => j += 1,
                _ => break,
            }
        }
        last
    }

    /// Whether the subtree ending at sibling `i` (exclusive) looks like
    /// float arithmetic (an `f64`/`f32` mention or a rounding call).
    fn float_marker_before(&self, sibs: &[Node], i: usize) -> bool {
        let lo = sibs.first().map_or(0, |n| n.span.lo);
        let hi = sibs.get(i.wrapping_sub(1)).map_or(lo, |n| n.span.hi);
        let text = self.pf.text_of(Span { lo, hi });
        ["f64", "f32", ".round(", ".ceil(", ".floor(", ".sqrt("]
            .iter()
            .any(|m| text.contains(m))
    }

    // ----- the checks ---------------------------------------------------

    fn leaf_checks(&mut self, sibs: &[Node], i: usize, cond: u32) {
        let text = self.leaf_token(&sibs[i]).text.clone();
        let line = self.leaf_token(&sibs[i]).line;
        match text.as_str() {
            "as" => self.cast_checks(sibs, i, line),
            "+" | "*" => self.arith_checks(sibs, i, &text, line),
            "/" => self.division_check(sibs, i, line),
            "unreachable" => {
                if self.pf.policy.panic_path
                    && !self.is_test
                    && self.next_code_text(sibs[i].span.hi - 1) == "!"
                {
                    self.push(
                        Rule::PanicDeep,
                        line,
                        format!(
                            "`unreachable!` in library code{}: a mis-modeled state aborts \
                             the whole repro job; return an error or justify the invariant",
                            self.hot_suffix()
                        ),
                    );
                }
            }
            _ if text.starts_with("sort_unstable") => {
                if self.pf.policy.determinism
                    && !self.is_test
                    && i > 0
                    && self.leaf_text(&sibs[i - 1]) == Some(".")
                {
                    self.push(
                        Rule::DeterminismFlow,
                        line,
                        format!(
                            "`.{text}(…)` in simulation code: ties land in an \
                             implementation-defined order; sort by a total key or use a \
                             stable sort"
                        ),
                    );
                }
            }
            _ if RNG_DRAWS.contains(&text.as_str()) => {
                if self.pf.policy.determinism
                    && !self.is_test
                    && cond > 0
                    && i > 0
                    && self.leaf_text(&sibs[i - 1]) == Some(".")
                    && matches!(
                        sibs.get(i + 1).map(|n| &n.kind),
                        Some(NodeKind::Group {
                            delim: Delim::Paren,
                            ..
                        })
                    )
                {
                    self.push(
                        Rule::DeterminismFlow,
                        line,
                        format!(
                            "RNG draw `.{text}(…)` inside a conditionally-executed \
                             context: the draw order becomes data-dependent, which can \
                             desynchronize kernels; hoist the draw or justify with an allow"
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    fn hot_suffix(&self) -> &'static str {
        if self.hot {
            " (reachable from a kernel hot loop)"
        } else {
            ""
        }
    }

    /// Truncating `as` casts (arith, error) and float→int casts
    /// (determinism-flow, warn).
    fn cast_checks(&mut self, sibs: &[Node], i: usize, line: u32) {
        if self.is_test {
            return;
        }
        let Some(target) = sibs.get(i + 1).and_then(|n| self.leaf_text(n)) else {
            return;
        };
        let target = target.to_string();
        let operand_literal = i > 0
            && matches!(
                self.leaf_kind(&sibs[i - 1]),
                Some(TokKind::Number) | Some(TokKind::Char)
            );
        if self.pf.policy.panic_path
            && NARROW_TARGETS.contains(&target.as_str())
            && i > 0
            && !operand_literal
        {
            self.push(
                Rule::Arith,
                line,
                format!(
                    "truncating `as {target}` on a non-literal value silently wraps at \
                     scale; use `{target}::try_from(…)`, widen the type, or add a \
                     justified allow"
                ),
            );
        }
        if self.pf.policy.determinism
            && !self.is_test
            && INT_TARGETS.contains(&target.as_str())
            && self.float_marker_before(sibs, i)
        {
            self.push(
                Rule::DeterminismFlow,
                line,
                format!(
                    "float arithmetic cast to `{target}` feeds integer simulation state: \
                     rounding is platform-sensitive at the margins; derive the value with \
                     integer arithmetic or justify with an allow"
                ),
            );
        }
    }

    /// Unchecked `+`/`*` (plain or compound) on accounting counters.
    fn arith_checks(&mut self, sibs: &[Node], i: usize, op: &str, line: u32) {
        if !self.pf.policy.panic_path || self.is_test {
            return;
        }
        let op_token = sibs[i].span.hi - 1;
        let compound = self.next_code_text(op_token) == "=";
        if compound {
            // `counter += …` / `counter *= …`: the target is the chain
            // ending right before the operator.
            if let Some(target) = self.terminal_ident_before(sibs, i) {
                if ACCOUNTING_VOCAB.contains(&target.as_str()) {
                    self.push(
                        Rule::Arith,
                        line,
                        format!(
                            "unchecked `{op}=` on accounting counter `{target}`: overflow \
                             wraps silently; use `saturating_`/`checked_` arithmetic or \
                             add a justified allow"
                        ),
                    );
                }
            }
            return;
        }
        // Binary form. A `*` with no value-like left neighbor is a deref.
        let prev_valueish = i > 0
            && (self.is_ident(&sibs[i - 1])
                || matches!(self.leaf_kind(&sibs[i - 1]), Some(TokKind::Number))
                || matches!(sibs[i - 1].kind, NodeKind::Group { .. }));
        if !prev_valueish {
            return;
        }
        // Skip `+` that is really part of `+=` handled above, or operators
        // glued from two tokens (`->`, `=>` never reach here for + / *).
        let left = self.terminal_ident_before(sibs, i);
        let right = self.terminal_ident_after(sibs, i + 1);
        for ident in [left, right].into_iter().flatten() {
            if ACCOUNTING_VOCAB.contains(&ident.as_str()) {
                self.push(
                    Rule::Arith,
                    line,
                    format!(
                        "unchecked `{op}` involving accounting counter `{ident}`: \
                         overflow wraps silently; use `saturating_`/`checked_` \
                         arithmetic or add a justified allow"
                    ),
                );
                return;
            }
        }
    }

    /// Integer `/` by a non-literal divisor (panic-deep).
    fn division_check(&mut self, sibs: &[Node], i: usize, line: u32) {
        if !self.pf.policy.panic_path || self.is_test {
            return;
        }
        let prev_valueish = i > 0
            && (self.is_ident(&sibs[i - 1])
                || matches!(self.leaf_kind(&sibs[i - 1]), Some(TokKind::Number))
                || matches!(sibs[i - 1].kind, NodeKind::Group { .. }));
        if !prev_valueish {
            return;
        }
        // Literal divisors cannot be zero at runtime; float division does
        // not panic at all.
        if matches!(
            sibs.get(i + 1).and_then(|n| self.leaf_kind(n)),
            Some(TokKind::Number)
        ) {
            return;
        }
        if self.float_marker_before(sibs, i) || self.float_marker_at(sibs, i + 1) {
            return;
        }
        self.push(
            Rule::PanicDeep,
            line,
            format!(
                "integer division by a non-literal divisor{}: panics on zero; guard the \
                 divisor or document why it cannot be zero",
                self.hot_suffix()
            ),
        );
    }

    fn float_marker_at(&self, sibs: &[Node], i: usize) -> bool {
        let Some(node) = sibs.get(i) else {
            return false;
        };
        let hi = sibs.last().map_or(node.span.hi, |n| n.span.hi);
        let text = self.pf.text_of(Span {
            lo: node.span.lo,
            hi,
        });
        ["f64", "f32", ".round(", ".ceil(", ".floor(", ".sqrt("]
            .iter()
            .any(|m| text.contains(m))
    }

    /// Indexing with a bracket group whose content is not a literal.
    fn indexing_check(&mut self, sibs: &[Node], i: usize) {
        if !self.pf.policy.panic_path || self.is_test || i == 0 {
            return;
        }
        let prev = &sibs[i - 1];
        let indexee = self.is_ident(prev)
            || matches!(
                prev.kind,
                NodeKind::Group {
                    delim: Delim::Paren,
                    ..
                } | NodeKind::Group {
                    delim: Delim::Bracket,
                    ..
                }
            );
        if !indexee {
            return;
        }
        let NodeKind::Group { children, .. } = &sibs[i].kind else {
            return;
        };
        // `[3]` — a constant index the author has visibly reviewed;
        // `[..]` — the full-range slice, which cannot panic.
        match children.as_slice() {
            [] => return,
            [only] if self.leaf_kind(only) == Some(TokKind::Number) => return,
            [a, b] if self.leaf_text(a) == Some(".") && self.leaf_text(b) == Some(".") => {
                return
            }
            _ => {}
        }
        let line = self.pf.first_code_line(sibs[i].span);
        self.push(
            Rule::PanicDeep,
            line,
            format!(
                "slice indexing with a non-literal index{}: out-of-bounds panics abort \
                 the repro job; prefer `get(…)` or document the bounds invariant",
                self.hot_suffix()
            ),
        );
    }
}

/// The workspace-level contract cross-reference: every type whose impl
/// defines `run_with` must be named by a test scope that also defines a
/// `kernels_*` test (the bit-identity/equivalence suites).
pub fn contract_xref(files: &[ParsedFile]) -> Vec<Finding> {
    // Corpus: the text of every test scope that mentions a kernels_* fn.
    let mut corpus = String::new();
    for pf in files {
        if !pf.policy.panic_path {
            // Whole file is test/bench/example code.
            let text = pf.text_of(Span {
                lo: 0,
                hi: pf.ast.len,
            });
            if text.contains("kernels_") {
                corpus.push_str(&text);
                corpus.push('\n');
            }
            continue;
        }
        collect_test_regions(pf, &pf.ast.items, false, &mut corpus);
    }

    // Candidates: (type, file, line) of each non-test `run_with` impl.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut findings = Vec::new();
    for pf in files {
        if !pf.policy.panic_path {
            continue;
        }
        collect_run_with(pf, &pf.ast.items, false, &mut |ty: &str, line: u32| {
            if !seen.insert(ty.to_string()) {
                return;
            }
            if !contains_word(&corpus, ty) {
                findings.push(Finding::new(
                    Rule::ContractXref,
                    pf.rel.clone(),
                    line,
                    format!(
                        "type `{ty}` defines `run_with` but no kernel-equivalence test \
                         (`kernels_*`) names it; add it to the bit-identity suite or \
                         justify with an allow"
                    ),
                ));
            }
        });
    }
    findings
}

fn collect_test_regions(pf: &ParsedFile, items: &[Item], in_test: bool, corpus: &mut String) {
    for item in items {
        let test = in_test || item.attrs.iter().any(|a| is_test_attr(&a.body));
        if test {
            let text = pf.text_of(item.span);
            if text.contains("kernels_") {
                corpus.push_str(&text);
                corpus.push('\n');
            }
            continue;
        }
        match &item.kind {
            ItemKind::Impl(b) => collect_test_regions(pf, &b.items, test, corpus),
            ItemKind::Trait(b) => collect_test_regions(pf, &b.items, test, corpus),
            ItemKind::Mod(b) => {
                if let Some(items) = &b.items {
                    collect_test_regions(pf, items, test, corpus);
                }
            }
            _ => {}
        }
    }
}

fn collect_run_with(
    pf: &ParsedFile,
    items: &[Item],
    in_test: bool,
    found: &mut impl FnMut(&str, u32),
) {
    for item in items {
        let test = in_test || item.attrs.iter().any(|a| is_test_attr(&a.body));
        if test {
            continue;
        }
        match &item.kind {
            ItemKind::Impl(b) => {
                let defines = b.items.iter().any(|i| {
                    matches!(&i.kind, ItemKind::Fn(f) if f.name == "run_with" && f.body.is_some())
                });
                if defines && !b.self_ty.is_empty() {
                    found(&b.self_ty, pf.first_code_line(item.span));
                }
            }
            ItemKind::Mod(m) => {
                if let Some(items) = &m.items {
                    collect_run_with(pf, items, test, found);
                }
            }
            _ => {}
        }
    }
}

/// Whole-word containment (neighbors must not be identifier characters).
fn contains_word(haystack: &str, word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(at) = haystack[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(src: &str) -> Vec<Finding> {
        let pf = ParsedFile::parse("crates/core/src/t.rs", src, SourcePolicy::sim_crate());
        scan_file(&pf, &BTreeSet::new())
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn narrowing_cast_is_flagged_with_line() {
        let f = sim("fn f(id: usize) -> u32 {\n    id as u32\n}\n");
        assert_eq!(rules_of(&f), [Rule::Arith]);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].severity, Severity::Error);
        assert!(f[0].message.contains("try_from"));
    }

    #[test]
    fn widening_and_literal_casts_are_fine() {
        assert!(sim("fn f(x: u32) -> u64 { x as u64 }").is_empty());
        assert!(sim("fn f() -> u32 { 7 as u32 }").is_empty());
        assert!(sim("fn f() -> u32 { 'x' as u32 }").is_empty());
        assert!(sim("fn f(x: u32) -> usize { x as usize }").is_empty());
    }

    #[test]
    fn narrowing_cast_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(id: usize) -> u32 { id as u32 }\n}\n";
        assert!(sim(src).is_empty());
    }

    #[test]
    fn compound_add_on_accounting_counter() {
        let f = sim("fn f(&mut self) {\n    self.cycles += 1;\n}\n");
        assert_eq!(rules_of(&f), [Rule::Arith]);
        assert!(f[0].message.contains("`+=`"), "{}", f[0].message);
        assert!(f[0].message.contains("cycles"));
    }

    #[test]
    fn binary_add_on_accounting_counter() {
        let f = sim("fn f(&self) -> u64 { self.local + self.root.completion() }");
        assert_eq!(rules_of(&f), [Rule::Arith]);
        assert!(f[0].message.contains("completion"));
    }

    #[test]
    fn saturating_add_is_fine() {
        assert!(sim("fn f(&mut self) { self.cycles = self.cycles.saturating_add(1); }").is_empty());
    }

    #[test]
    fn plain_counters_do_not_fire() {
        assert!(sim("fn f(i: usize) -> usize { i + 1 }").is_empty());
        assert!(sim("fn f(&mut self) { self.idx += 1; }").is_empty());
    }

    #[test]
    fn deref_star_is_not_multiplication() {
        assert!(sim("fn f(p: &u64) -> u64 { let x = *p; x }").is_empty());
    }

    #[test]
    fn rng_draw_in_conditional_is_warned() {
        let src = "fn f(&mut self) {\n    if self.backoff > 0 {\n        let d = self.rng.next_u64();\n    }\n}\n";
        let f = sim(src);
        assert_eq!(rules_of(&f), [Rule::DeterminismFlow]);
        assert_eq!(f[0].severity, Severity::Warn);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unconditional_rng_draw_is_fine() {
        assert!(sim("fn f(&mut self) { let d = self.rng.next_u64(); }").is_empty());
    }

    #[test]
    fn rng_in_loop_body_counts_as_conditional() {
        let src = "fn f(&mut self) { for _ in 0..4 { self.rng.next_bool(); } }";
        assert_eq!(rules_of(&sim(src)), [Rule::DeterminismFlow]);
    }

    #[test]
    fn unstable_sort_is_warned_in_sim_code_only() {
        let src = "fn f(v: &mut Vec<u64>) { v.sort_unstable(); }";
        assert_eq!(rules_of(&sim(src)), [Rule::DeterminismFlow]);
        let pf = ParsedFile::parse("crates/bench/src/t.rs", src, SourcePolicy::harness_crate());
        assert!(scan_file(&pf, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn float_to_int_cast_is_warned() {
        let f = sim("fn f(w: f64, n: u64) -> u64 { (n as f64 * w).round() as u64 }");
        assert!(
            f.iter().any(|x| x.rule == Rule::DeterminismFlow),
            "{f:?}"
        );
    }

    #[test]
    fn indexing_and_division_are_info_by_default() {
        let f = sim("fn f(v: &[u64], i: usize, d: u64) -> u64 { v[i] / d }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::PanicDeep));
        assert!(f.iter().all(|x| x.severity == Severity::Info));
    }

    #[test]
    fn literal_index_full_range_and_literal_divisor_are_fine() {
        assert!(sim("fn f(v: &[u64]) -> u64 { v[0] / 2 }").is_empty());
        assert!(sim("fn f(v: &[u64]) -> &[u64] { &v[..] }").is_empty());
        assert!(sim("fn f(x: f64) -> f64 { x / 2.0 }").is_empty());
        // Division where a float marker is visible in the expression is
        // exempt (float division cannot panic)…
        assert!(sim("fn f(x: u64, y: f64) -> f64 { (x as f64) / y.floor() }").is_empty());
        // …but an untyped `x / y` cannot be proven float and stays an
        // info finding (baseline-absorbed, differential-gated).
        let f = sim("fn f(x: f64, y: f64) -> f64 { x / y }");
        assert_eq!(rules_of(&f), [Rule::PanicDeep]);
        assert_eq!(f[0].severity, Severity::Info);
    }

    #[test]
    fn array_type_and_macro_brackets_are_not_indexing() {
        assert!(sim("fn f() { let x: [u64; 4] = [0; 4]; let v = vec![1, 2]; }").is_empty());
    }

    #[test]
    fn unreachable_macro_is_flagged() {
        let f = sim("fn f(x: u8) { match x { 0 => {} _ => unreachable!(), } }");
        assert_eq!(rules_of(&f), [Rule::PanicDeep]);
    }

    #[test]
    fn hot_fns_elevate_panic_deep_to_warn() {
        let src = "fn run_with(v: &[u64], i: usize) -> u64 { v[i] }";
        let pf = ParsedFile::parse("crates/core/src/t.rs", src, SourcePolicy::sim_crate());
        let hot: BTreeSet<usize> = [pf.ast.items[0].span.lo].into_iter().collect();
        let f = scan_file(&pf, &hot);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warn);
        assert!(f[0].message.contains("hot loop"), "{}", f[0].message);
    }

    #[test]
    fn contract_xref_requires_a_kernels_test() {
        let lib = "pub struct Sim;\nimpl Sim {\n    pub fn run_with(&self, seed: u64, kernel: u8) {}\n}\n";
        let pf = ParsedFile::parse("crates/core/src/sim.rs", lib, SourcePolicy::sim_crate());
        let f = contract_xref(&[pf]);
        assert_eq!(rules_of(&f), [Rule::ContractXref]);
        assert!(f[0].message.contains("`Sim`"));

        // Naming the type in a kernels_* test scope satisfies the rule.
        let test_file = "#[test]\nfn kernels_bit_identical() { let _ = Sim; }\n";
        let pf = ParsedFile::parse("crates/core/src/sim.rs", lib, SourcePolicy::sim_crate());
        let tf = ParsedFile::parse("crates/core/tests/eq.rs", test_file, SourcePolicy::test_code());
        assert!(contract_xref(&[pf, tf]).is_empty());
    }

    #[test]
    fn contract_xref_word_boundaries() {
        // `MySim` in the corpus must not satisfy the lookup for `Sim`.
        let lib = "pub struct Sim;\nimpl Sim { pub fn run_with(&self) {} }\n";
        let test_file = "#[test]\nfn kernels_eq() { let _ = MySim; }\n";
        let pf = ParsedFile::parse("crates/core/src/sim.rs", lib, SourcePolicy::sim_crate());
        let tf = ParsedFile::parse("crates/core/tests/eq.rs", test_file, SourcePolicy::test_code());
        assert_eq!(contract_xref(&[pf, tf]).len(), 1);
    }

    #[test]
    fn test_code_is_exempt_from_panic_deep() {
        let src = "#[test]\nfn t(v: &[u64], i: usize) { let _ = v[i]; }\n";
        assert!(sim(src).is_empty());
    }
}
