//! A lenient recursive-descent parser over the lossless token stream.
//!
//! The semantic rules ([`crate::sem`]) need more than tokens: *which fn a
//! token is in* (call-graph reachability), *whether an expression sits in a
//! conditionally-skipped or loop context* (determinism dataflow), and
//! *which impl defines which method* (contract cross-reference). This
//! parser recovers exactly that much structure — items, fns, impls, and a
//! structural expression tree — and deliberately no more: operator
//! precedence, patterns, and types stay flat token runs.
//!
//! Two invariants make the output trustworthy without a full grammar:
//!
//! * **Spans tile.** Every node's [`Span`] is a half-open token-index
//!   range; children tile their parent's interior and consecutive
//!   siblings touch. Concatenating any node's tokens reproduces the
//!   source bytes of that region exactly ([`Ast::print`] of the root is
//!   the whole file). `validate_tiling` checks this and the `forall!`
//!   property in `tests/parser_props.rs` fuzzes it; the parse → print →
//!   reparse round trip must also yield an identical tree.
//! * **Leniency.** Unknown constructs become [`ItemKind::Verbatim`] /
//!   leaf runs instead of errors, so the lint can still scan a file that
//!   `rustc` would reject — the same contract the tokenizer keeps.
//!
//! Trivia (whitespace and comments) is attached to the *following*
//! construct: a node's span starts at the first trivia token after its
//! predecessor and ends after its last code token. Trailing trivia before
//! a closing brace or EOF is recorded in the enclosing container.

use crate::tokenizer::{tokenize, TokKind, Token};

/// A half-open token-index range `[lo, hi)` into the file's token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index covered.
    pub lo: usize,
    /// One past the last token index covered.
    pub hi: usize,
}

impl Span {
    /// Whether the span covers token index `at`.
    pub fn contains(&self, at: usize) -> bool {
        self.lo <= at && at < self.hi
    }
}

/// A parsed file: top-level items plus the trailing trivia run.
#[derive(Debug, Clone, PartialEq)]
pub struct Ast {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// Trivia between the last item and EOF.
    pub trailing: Span,
    /// Total token count (items + trailing tile `[0, len)`).
    pub len: usize,
}

/// One attribute, `#[...]` (outer) or `#![...]` (inner).
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Tokens of the attribute including leading trivia.
    pub span: Span,
    /// Joined code-token text between the brackets (`cfg(test)`).
    pub body: String,
}

/// One item: attributes plus a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Full extent: leading trivia, attributes, and the item proper.
    pub span: Span,
    /// Outer attributes, in order.
    pub attrs: Vec<Attr>,
    /// What the item is.
    pub kind: ItemKind,
}

/// The item taxonomy — only as fine as the rules require.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `fn name(...) {...}` (or a bodyless trait/extern decl).
    Fn(FnItem),
    /// `impl [Trait for] Type { items }`.
    Impl(ImplBlock),
    /// `mod name { items }` or `mod name;`.
    Mod(ModBlock),
    /// `trait Name { items }`.
    Trait(TraitBlock),
    /// `struct Name ...`.
    Struct(String),
    /// `enum Name {...}`.
    Enum(String),
    /// `union Name {...}`.
    Union(String),
    /// `use ...;` / `extern crate ...;`.
    Use,
    /// `const NAME: ... = ...;`.
    Const(String),
    /// `static NAME: ... = ...;`.
    Static(String),
    /// `type Name = ...;`.
    TypeAlias(String),
    /// `macro_rules! name {...}`.
    MacroRules(String),
    /// An item-position macro invocation `name!(...)` / `name!{...}`.
    MacroCall(String),
    /// `extern "C" { ... }`.
    ForeignMod,
    /// A file- or module-level inner attribute `#![...]`.
    InnerAttr,
    /// Anything unrecognized, consumed to a safe boundary.
    Verbatim,
}

/// A function item.
#[derive(Debug, Clone, PartialEq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The body block, if present (`None` for `fn f();` declarations).
    pub body: Option<Node>,
}

/// An `impl` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplBlock {
    /// Last angle-depth-0 identifier of the self type (`Foo` in
    /// `impl<T> Foo<T>`).
    pub self_ty: String,
    /// Last angle-depth-0 identifier of the implemented trait, if any.
    pub of_trait: Option<String>,
    /// Associated items.
    pub items: Vec<Item>,
    /// Trivia between the last associated item and the closing brace.
    pub trailing: Span,
}

/// A `mod` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ModBlock {
    /// The module's name.
    pub name: String,
    /// Inline items (`None` for `mod name;`).
    pub items: Option<Vec<Item>>,
    /// Trivia before the closing brace (empty span for `mod name;`).
    pub trailing: Span,
}

/// A `trait` block.
#[derive(Debug, Clone, PartialEq)]
pub struct TraitBlock {
    /// The trait's name.
    pub name: String,
    /// Associated items (default methods keep their bodies).
    pub items: Vec<Item>,
    /// Trivia before the closing brace.
    pub trailing: Span,
}

/// Bracketing delimiter of a [`NodeKind::Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

/// Control-flow keyword of a [`NodeKind::Ctrl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlKw {
    /// `if head { body } [else ...]` — body and chain are conditional.
    If,
    /// `match head { body }` — body is conditional.
    Match,
    /// `for pat in head { body }` — body is a loop body.
    For,
    /// `while head { body }` — body is both loop and conditional.
    While,
    /// `loop { body }` — body is a loop body.
    Loop,
}

/// One node of the structural expression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Extent including leading trivia.
    pub span: Span,
    /// Node shape.
    pub kind: NodeKind,
}

/// Node taxonomy of the structural expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Exactly one code token (its index is `span.hi - 1`).
    Leaf,
    /// A delimited group; children tile the interior.
    Group {
        /// The bracketing delimiter.
        delim: Delim,
        /// Child nodes between the delimiters.
        children: Vec<Node>,
        /// Trivia between the last child and the closing delimiter.
        trailing: Span,
    },
    /// A control-flow construct.
    Ctrl {
        /// The introducing keyword.
        kw: CtrlKw,
        /// Nodes between the keyword and the body brace (condition,
        /// iterator expression, scrutinee).
        head: Vec<Node>,
        /// The body group (`None` only on malformed input).
        body: Option<Box<Node>>,
        /// `else` continuation of an `if`: the `else` leaf followed by a
        /// block group or a chained `if` ctrl.
        chain: Vec<Node>,
    },
}

impl Node {
    /// The code token index of a leaf (`span.hi - 1`).
    pub fn leaf_code(&self) -> usize {
        debug_assert!(matches!(self.kind, NodeKind::Leaf));
        self.span.hi - 1
    }
}

/// Parses tokenized source. The token slice must be the full file (the
/// parser indexes it globally).
pub fn parse(tokens: &[Token]) -> Ast {
    Parser {
        tokens,
        pos: 0,
    }
    .file()
}

/// Convenience: tokenize then parse.
pub fn parse_source(src: &str) -> (Vec<Token>, Ast) {
    let tokens = tokenize(src);
    let ast = parse(&tokens);
    (tokens, ast)
}

/// Reconstructs the exact source text of `span` from the token stream.
pub fn print_span(tokens: &[Token], span: Span) -> String {
    tokens[span.lo..span.hi]
        .iter()
        .map(|t| t.text.as_str())
        .collect()
}

impl Ast {
    /// Reconstructs the whole file byte-for-byte.
    pub fn print(&self, tokens: &[Token]) -> String {
        print_span(
            tokens,
            Span {
                lo: 0,
                hi: self.len,
            },
        )
    }

    /// Checks the tiling invariant over the whole tree: items + trailing
    /// partition `[0, len)` and every container's children tile its
    /// interior. Returns a description of the first violation.
    pub fn validate_tiling(&self) -> Result<(), String> {
        let mut at = 0usize;
        for item in &self.items {
            if item.span.lo != at {
                return Err(format!("item gap: expected lo {at}, got {}", item.span.lo));
            }
            validate_item(item)?;
            at = item.span.hi;
        }
        if self.trailing.lo != at || self.trailing.hi != self.len {
            return Err(format!(
                "trailing [{}, {}) does not close [{}..{})",
                self.trailing.lo, self.trailing.hi, at, self.len
            ));
        }
        Ok(())
    }
}

fn validate_items(items: &[Item], interior_lo: usize, trailing: Span, hi: usize) -> Result<(), String> {
    let mut at = interior_lo;
    for item in items {
        if item.span.lo != at {
            return Err(format!("item gap: expected lo {at}, got {}", item.span.lo));
        }
        validate_item(item)?;
        at = item.span.hi;
    }
    if trailing.lo != at || trailing.hi != hi {
        return Err(format!(
            "container trailing [{}, {}) does not close [{}..{})",
            trailing.lo, trailing.hi, at, hi
        ));
    }
    Ok(())
}

fn validate_item(item: &Item) -> Result<(), String> {
    match &item.kind {
        ItemKind::Fn(f) => {
            if let Some(body) = &f.body {
                validate_node(body)?;
            }
            Ok(())
        }
        ItemKind::Impl(b) => validate_items(&b.items, b.items.first().map_or(b.trailing.lo, |i| i.span.lo), b.trailing, b.trailing.hi),
        ItemKind::Trait(b) => validate_items(&b.items, b.items.first().map_or(b.trailing.lo, |i| i.span.lo), b.trailing, b.trailing.hi),
        ItemKind::Mod(b) => match &b.items {
            Some(items) => validate_items(items, items.first().map_or(b.trailing.lo, |i| i.span.lo), b.trailing, b.trailing.hi),
            None => Ok(()),
        },
        _ => Ok(()),
    }
}

fn validate_node(node: &Node) -> Result<(), String> {
    match &node.kind {
        NodeKind::Leaf => {
            if node.span.hi <= node.span.lo {
                return Err("empty leaf".to_string());
            }
            Ok(())
        }
        NodeKind::Group {
            children, trailing, ..
        } => {
            // Interior starts right after the opening delimiter.
            let mut at = children.first().map_or(trailing.lo, |c| c.span.lo);
            for child in children {
                if child.span.lo != at {
                    return Err(format!("group gap: expected {at}, got {}", child.span.lo));
                }
                validate_node(child)?;
                at = child.span.hi;
            }
            if trailing.lo != at {
                return Err(format!("group trailing gap at {at}"));
            }
            Ok(())
        }
        NodeKind::Ctrl {
            head, body, chain, ..
        } => {
            let mut at = node
                .span
                .lo;
            // Keyword leaf is implicit: the first head node (or body)
            // starts after it; just check contiguity of the listed parts.
            let mut parts: Vec<&Node> = head.iter().collect();
            if let Some(b) = body {
                parts.push(b);
            }
            parts.extend(chain.iter());
            for (i, part) in parts.iter().enumerate() {
                if i == 0 {
                    if part.span.lo < at {
                        return Err("ctrl part precedes keyword".to_string());
                    }
                } else if part.span.lo != at {
                    return Err(format!("ctrl gap: expected {at}, got {}", part.span.lo));
                }
                validate_node(part)?;
                at = part.span.hi;
            }
            if at != node.span.hi && !parts.is_empty() {
                return Err(format!("ctrl end {at} != span hi {}", node.span.hi));
            }
            Ok(())
        }
    }
}

/// Item-introducing modifier keywords consumed before the dispatch
/// keyword (`pub const unsafe fn ...`).
const MODIFIERS: &[&str] = &["pub", "const", "unsafe", "async", "default", "extern"];

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn file(mut self) -> Ast {
        let mut items = Vec::new();
        loop {
            let mark = self.pos;
            self.skip_trivia();
            if self.pos >= self.tokens.len() {
                return Ast {
                    items,
                    trailing: Span {
                        lo: mark,
                        hi: self.tokens.len(),
                    },
                    len: self.tokens.len(),
                };
            }
            self.pos = mark;
            items.push(self.item());
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// The current token's text, or "" at EOF.
    fn cur_text(&self) -> &str {
        self.tokens.get(self.pos).map_or("", |t| t.text.as_str())
    }

    fn cur_kind(&self) -> Option<TokKind> {
        self.tokens.get(self.pos).map(|t| t.kind)
    }

    /// Advances past whitespace and comments.
    fn skip_trivia(&mut self) {
        while let Some(tok) = self.tokens.get(self.pos) {
            if tok.is_code() {
                break;
            }
            self.pos += 1;
        }
    }

    /// The text of the next code token after the current one.
    fn peek_code_text(&self, skip: usize) -> &str {
        let mut seen = 0usize;
        for tok in &self.tokens[(self.pos + 1).min(self.tokens.len())..] {
            if tok.is_code() {
                if seen == skip {
                    return tok.text.as_str();
                }
                seen += 1;
            }
        }
        ""
    }

    /// Consumes one code token (the caller has already skipped trivia).
    fn bump(&mut self) {
        debug_assert!(self.pos < self.tokens.len());
        self.pos += 1;
    }

    /// Consumes an attribute at the cursor (`#[...]` or `#![...]`),
    /// returning its joined inner text. The cursor sits on `#`.
    fn attribute(&mut self) -> String {
        self.bump(); // #
        self.skip_trivia();
        if self.cur_text() == "!" {
            self.bump();
            self.skip_trivia();
        }
        if self.cur_text() != "[" {
            return String::new(); // malformed; leave the rest to leniency
        }
        self.bump(); // [
        let mut depth = 1usize;
        let mut body = String::new();
        while !self.at_end() {
            let tok = &self.tokens[self.pos];
            if tok.is_code() {
                match tok.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            return body;
                        }
                    }
                    _ => {}
                }
                body.push_str(&tok.text);
            }
            self.pos += 1;
        }
        body
    }

    /// Parses one item starting at `self.pos` (which may point at trivia).
    fn item(&mut self) -> Item {
        let lo = self.pos;
        self.skip_trivia();
        let mut attrs = Vec::new();

        // Inner attribute: an item of its own (it binds to the container,
        // not the next item).
        if self.cur_text() == "#" && self.peek_code_text(0) == "!" {
            let attr_lo = lo;
            self.attribute();
            return Item {
                span: Span {
                    lo: attr_lo,
                    hi: self.pos,
                },
                attrs,
                kind: ItemKind::InnerAttr,
            };
        }

        // Outer attributes.
        while self.cur_text() == "#" && self.peek_code_text(0) == "[" {
            let attr_lo = self.pos;
            let body = self.attribute();
            attrs.push(Attr {
                span: Span {
                    lo: attr_lo,
                    hi: self.pos,
                },
                body,
            });
            self.skip_trivia();
        }

        // Modifier keywords before the dispatching keyword.
        let mut saw_extern = false;
        loop {
            let text = self.cur_text();
            if self.cur_kind() == Some(TokKind::Ident) && MODIFIERS.contains(&text) {
                // `const NAME: …` / `default` as an ordinary name: these
                // words are modifiers only when another modifier or a
                // definable item follows (`const fn`, `default impl`).
                if matches!(text, "const" | "default")
                    && !matches!(
                        self.peek_code_text(0),
                        "fn" | "unsafe" | "async" | "extern" | "impl" | "type"
                    )
                {
                    break;
                }
                saw_extern = text == "extern";
                // `extern crate` is a use-like item, not a modifier.
                if saw_extern && self.peek_code_text(0) == "crate" {
                    let kind = self.consume_to_semi();
                    let _ = kind;
                    return self.finish(lo, attrs, ItemKind::Use);
                }
                self.bump();
                self.skip_trivia();
                // `pub(crate)` / `pub(in path)` / `extern "C"`.
                if self.cur_text() == "(" {
                    self.consume_balanced();
                    self.skip_trivia();
                }
                if self.cur_kind() == Some(TokKind::Str) {
                    self.bump();
                    self.skip_trivia();
                }
                continue;
            }
            break;
        }

        // `extern "C" { ... }` foreign module (extern already consumed).
        if saw_extern && self.cur_text() == "{" {
            self.consume_balanced();
            return self.finish(lo, attrs, ItemKind::ForeignMod);
        }

        let kind = match (self.cur_kind(), self.cur_text()) {
            (Some(TokKind::Ident), "fn") => {
                let f = self.fn_item();
                ItemKind::Fn(f)
            }
            (Some(TokKind::Ident), "impl") => ItemKind::Impl(self.impl_block()),
            (Some(TokKind::Ident), "mod") => ItemKind::Mod(self.mod_block()),
            (Some(TokKind::Ident), "trait") => ItemKind::Trait(self.trait_block()),
            (Some(TokKind::Ident), "struct") => {
                let name = self.name_after_kw();
                self.consume_to_semi_or_brace();
                ItemKind::Struct(name)
            }
            (Some(TokKind::Ident), "enum") => {
                let name = self.name_after_kw();
                self.consume_to_semi_or_brace();
                ItemKind::Enum(name)
            }
            (Some(TokKind::Ident), "union") => {
                let name = self.name_after_kw();
                self.consume_to_semi_or_brace();
                ItemKind::Union(name)
            }
            (Some(TokKind::Ident), "use") => {
                self.consume_to_semi();
                ItemKind::Use
            }
            (Some(TokKind::Ident), "const") | (Some(TokKind::Ident), "static") => {
                // (Unreached for `const fn`: the modifier loop ate it.)
                let is_const = self.cur_text() == "const";
                let name = self.name_after_kw();
                self.consume_to_semi();
                if is_const {
                    ItemKind::Const(name)
                } else {
                    ItemKind::Static(name)
                }
            }
            (Some(TokKind::Ident), "type") => {
                let name = self.name_after_kw();
                self.consume_to_semi();
                ItemKind::TypeAlias(name)
            }
            (Some(TokKind::Ident), "macro_rules") => {
                self.bump(); // macro_rules
                self.skip_trivia();
                if self.cur_text() == "!" {
                    self.bump();
                    self.skip_trivia();
                }
                let name = if self.cur_kind() == Some(TokKind::Ident) {
                    let n = self.cur_text().to_string();
                    self.bump();
                    n
                } else {
                    String::new()
                };
                self.skip_trivia();
                self.consume_balanced();
                ItemKind::MacroRules(name)
            }
            (Some(TokKind::Ident), name) if self.is_macro_call_at() => {
                let name = name.to_string();
                self.consume_macro_call();
                ItemKind::MacroCall(name)
            }
            (None, _) => ItemKind::Verbatim, // attrs/modifiers at EOF
            _ => {
                self.consume_to_semi_or_brace();
                ItemKind::Verbatim
            }
        };
        self.finish(lo, attrs, kind)
    }

    fn finish(&mut self, lo: usize, attrs: Vec<Attr>, kind: ItemKind) -> Item {
        Item {
            span: Span { lo, hi: self.pos },
            attrs,
            kind,
        }
    }

    /// Whether the cursor sits on `name !` (an item-position macro call,
    /// possibly `path::name!`).
    fn is_macro_call_at(&self) -> bool {
        let mut skip = 0usize;
        loop {
            match self.peek_code_text(skip) {
                "!" => return true,
                ":" => skip += 1, // path separator halves
                _ if skip > 0 && self.peek_code_text(skip - 1) == ":" => {
                    // ident after `::`
                    skip += 1;
                }
                _ => return false,
            }
            if skip > 8 {
                return false;
            }
        }
    }

    /// Consumes `path::name ! ( ... ) ;?` / `name ! { ... }`.
    fn consume_macro_call(&mut self) {
        while !self.at_end() {
            self.skip_trivia();
            match self.cur_text() {
                "!" => {
                    self.bump();
                    self.skip_trivia();
                    let delim = self.cur_text().to_string();
                    self.consume_balanced();
                    if delim != "{" {
                        self.skip_trivia();
                        if self.cur_text() == ";" {
                            self.bump();
                        }
                    }
                    return;
                }
                _ => {
                    if self.at_end() {
                        return;
                    }
                    self.bump();
                }
            }
        }
    }

    /// The first identifier after the current keyword (cursor on the
    /// keyword; consumed).
    fn name_after_kw(&mut self) -> String {
        self.bump(); // the keyword
        self.skip_trivia();
        if self.cur_kind() == Some(TokKind::Ident) {
            let name = self.cur_text().to_string();
            self.bump();
            name
        } else {
            String::new()
        }
    }

    /// Consumes to (and including) the first `;` at delimiter depth 0, or
    /// a top-level brace group if one starts first.
    fn consume_to_semi_or_brace(&mut self) {
        while !self.at_end() {
            self.skip_trivia();
            match self.cur_text() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" => {
                    self.consume_balanced();
                    return;
                }
                "(" | "[" => self.consume_balanced(),
                _ => {
                    if self.at_end() {
                        return;
                    }
                    self.bump();
                }
            }
        }
    }

    /// Consumes to (and including) the first `;` at delimiter depth 0
    /// (brace groups along the way are balanced through).
    fn consume_to_semi(&mut self) {
        while !self.at_end() {
            self.skip_trivia();
            match self.cur_text() {
                ";" => {
                    self.bump();
                    return;
                }
                "(" | "[" | "{" => self.consume_balanced(),
                _ => {
                    if self.at_end() {
                        return;
                    }
                    self.bump();
                }
            }
        }
    }

    /// Consumes a balanced delimiter group starting at the cursor (which
    /// must sit on `(`, `[` or `{`); unterminated groups extend to EOF.
    fn consume_balanced(&mut self) {
        let open = self.cur_text().to_string();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                if !self.at_end() {
                    self.bump();
                }
                return;
            }
        };
        self.bump();
        let mut depth = 1usize;
        while !self.at_end() {
            let tok = &self.tokens[self.pos];
            if tok.is_code() {
                if tok.text == open {
                    depth += 1;
                } else if tok.text == close {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
            }
            self.pos += 1;
        }
    }

    /// `fn name ... { body }` (cursor on `fn`).
    fn fn_item(&mut self) -> FnItem {
        let name = self.name_after_kw();
        // Signature: scan to the body `{` or a `;` at delimiter depth 0.
        loop {
            self.skip_trivia();
            if self.at_end() {
                return FnItem { name, body: None };
            }
            match self.cur_text() {
                ";" => {
                    self.bump();
                    return FnItem { name, body: None };
                }
                "{" => break,
                "(" | "[" => self.consume_balanced(),
                _ => self.bump(),
            }
        }
        let body = self.group();
        FnItem {
            name,
            body: Some(body),
        }
    }

    /// `impl ... { items }` (cursor on `impl`).
    fn impl_block(&mut self) -> ImplBlock {
        self.bump(); // impl
        // Collect signature code tokens (with angle-depth) until `{`.
        let mut sig: Vec<(usize, String)> = Vec::new(); // (angle depth, text)
        let mut angle = 0usize;
        loop {
            self.skip_trivia();
            if self.at_end() || self.cur_text() == "{" {
                break;
            }
            let text = self.cur_text().to_string();
            match text.as_str() {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "(" | "[" => {
                    self.consume_balanced();
                    continue;
                }
                _ => {}
            }
            sig.push((angle, text));
            self.bump();
        }
        // Split at a depth-0 `for`; names are the last depth-0 idents of
        // each side. (`impl Trait for Type`, `impl Type`.)
        let for_at = sig
            .iter()
            .position(|(depth, text)| *depth == 0 && text == "for");
        let last_ident = |slice: &[(usize, String)]| -> String {
            slice
                .iter()
                .rev()
                .find(|(depth, text)| {
                    *depth == 0
                        && text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                        && text != "where"
                })
                .map(|(_, text)| text.clone())
                .unwrap_or_default()
        };
        let (of_trait, self_ty) = match for_at {
            Some(at) => (Some(last_ident(&sig[..at])), last_ident(&sig[at + 1..])),
            None => (None, last_ident(&sig)),
        };
        let (items, trailing) = self.item_body();
        ImplBlock {
            self_ty,
            of_trait,
            items,
            trailing,
        }
    }

    /// `mod name { items }` or `mod name ;` (cursor on `mod`).
    fn mod_block(&mut self) -> ModBlock {
        let name = self.name_after_kw();
        self.skip_trivia();
        if self.cur_text() == ";" {
            self.bump();
            return ModBlock {
                name,
                items: None,
                trailing: Span {
                    lo: self.pos,
                    hi: self.pos,
                },
            };
        }
        let (items, trailing) = self.item_body();
        ModBlock {
            name,
            items: Some(items),
            trailing,
        }
    }

    /// `trait Name ... { items }` (cursor on `trait`).
    fn trait_block(&mut self) -> TraitBlock {
        let name = self.name_after_kw();
        // Bounds / where clause up to the body.
        loop {
            self.skip_trivia();
            if self.at_end() || self.cur_text() == "{" {
                break;
            }
            if self.cur_text() == ";" {
                // `trait Alias = ...;` — no body.
                self.bump();
                return TraitBlock {
                    name,
                    items: Vec::new(),
                    trailing: Span {
                        lo: self.pos,
                        hi: self.pos,
                    },
                };
            }
            if matches!(self.cur_text(), "(" | "[") {
                self.consume_balanced();
            } else {
                self.bump();
            }
        }
        let (items, trailing) = self.item_body();
        TraitBlock {
            name,
            items,
            trailing,
        }
    }

    /// A `{ items }` container body (cursor at `{` or EOF). Returns the
    /// items and the trailing trivia span ending at (and including) `}`.
    fn item_body(&mut self) -> (Vec<Item>, Span) {
        let mut items = Vec::new();
        if self.cur_text() != "{" {
            return (
                items,
                Span {
                    lo: self.pos,
                    hi: self.pos,
                },
            );
        }
        self.bump(); // {
        loop {
            let mark = self.pos;
            self.skip_trivia();
            if self.at_end() {
                return (
                    items,
                    Span {
                        lo: mark,
                        hi: self.pos,
                    },
                );
            }
            if self.cur_text() == "}" {
                self.bump();
                return (
                    items,
                    Span {
                        lo: mark,
                        hi: self.pos,
                    },
                );
            }
            self.pos = mark;
            items.push(self.item());
        }
    }

    // ----- expression-level parsing -------------------------------------

    /// Parses a delimited group at the cursor (trivia already part of the
    /// caller's span bookkeeping; cursor sits on the opening delimiter).
    fn group(&mut self) -> Node {
        let lo = self.pos;
        let delim = match self.cur_text() {
            "(" => Delim::Paren,
            "[" => Delim::Bracket,
            _ => Delim::Brace,
        };
        self.bump(); // opening delimiter
        let close = match delim {
            Delim::Paren => ")",
            Delim::Bracket => "]",
            Delim::Brace => "}",
        };
        let mut children = Vec::new();
        loop {
            let mark = self.pos;
            self.skip_trivia();
            if self.at_end() {
                return Node {
                    span: Span { lo, hi: self.pos },
                    kind: NodeKind::Group {
                        delim,
                        children,
                        trailing: Span {
                            lo: mark,
                            hi: self.pos,
                        },
                    },
                };
            }
            if self.cur_text() == close {
                self.bump();
                return Node {
                    span: Span { lo, hi: self.pos },
                    kind: NodeKind::Group {
                        delim,
                        children,
                        trailing: Span {
                            lo: mark,
                            hi: self.pos - 1,
                        },
                    },
                };
            }
            self.pos = mark;
            children.push(self.node());
        }
    }

    /// Parses one expression-level node starting at `self.pos` (which may
    /// point at trivia).
    fn node(&mut self) -> Node {
        let lo = self.pos;
        self.skip_trivia();
        if self.at_end() {
            // Degenerate: trivia-only leaf at EOF (callers guard this).
            return Node {
                span: Span { lo, hi: self.pos },
                kind: NodeKind::Leaf,
            };
        }
        match (self.cur_kind(), self.cur_text()) {
            (_, "(") | (_, "[") | (_, "{") => {
                let mut group = self.group();
                group.span.lo = lo;
                group
            }
            (Some(TokKind::Ident), "if") => self.ctrl(lo, CtrlKw::If),
            (Some(TokKind::Ident), "match") => self.ctrl(lo, CtrlKw::Match),
            (Some(TokKind::Ident), "for") => self.ctrl(lo, CtrlKw::For),
            (Some(TokKind::Ident), "while") => self.ctrl(lo, CtrlKw::While),
            (Some(TokKind::Ident), "loop") => self.ctrl(lo, CtrlKw::Loop),
            _ => {
                self.bump();
                Node {
                    span: Span { lo, hi: self.pos },
                    kind: NodeKind::Leaf,
                }
            }
        }
    }

    /// Whether the code token at index `at` is a *plain* `=` (assignment
    /// or `let` binding), not part of `==`, `=>`, `<=`, `>=`, `!=`, `+=`…
    fn is_plain_eq(&self, at: usize) -> bool {
        if self.tokens[at].text != "=" {
            return false;
        }
        let prev = self.tokens[..at]
            .iter()
            .rev()
            .find(|t| t.is_code())
            .map(|t| t.text.as_str());
        let next = self.tokens[at + 1..]
            .iter()
            .find(|t| t.is_code())
            .map(|t| t.text.as_str());
        let op_chars = ["=", "<", ">", "!", "+", "-", "*", "/", "%", "^", "&", "|"];
        if prev.is_some_and(|p| op_chars.contains(&p)) {
            return false;
        }
        if next.is_some_and(|n| n == "=" || n == ">") {
            return false;
        }
        true
    }

    /// Parses `kw head { body } [else ...]`. The cursor sits on the
    /// keyword; `lo` covers its leading trivia.
    fn ctrl(&mut self, lo: usize, kw: CtrlKw) -> Node {
        self.bump(); // keyword
        // `if let PAT = ...` / `while let PAT = ...`: a struct pattern may
        // legally carry braces before the `=`; only a brace group after
        // the `=` (or in a plain condition) is the body.
        self.skip_trivia();
        let is_let = matches!(kw, CtrlKw::If | CtrlKw::While) && self.cur_text() == "let";
        let mut seen_eq = !is_let;
        let mut head = Vec::new();
        let mut body = None;
        loop {
            let mark = self.pos;
            self.skip_trivia();
            if self.at_end() {
                self.pos = mark;
                break;
            }
            if self.cur_text() == "{" && seen_eq {
                self.pos = mark;
                body = Some(Box::new(self.node()));
                break;
            }
            // A closing delimiter means the construct is malformed (e.g.
            // `match x` as a whole match arm value); stop without a body.
            if matches!(self.cur_text(), "}" | ")" | "]" | ";" | ",") {
                self.pos = mark;
                break;
            }
            if !seen_eq && self.is_plain_eq(self.pos) {
                seen_eq = true;
            }
            self.pos = mark;
            head.push(self.node());
        }
        let mut chain = Vec::new();
        if kw == CtrlKw::If && body.is_some() {
            let mark = self.pos;
            self.skip_trivia();
            if !self.at_end() && self.cur_text() == "else" {
                let else_lo = mark;
                self.bump();
                chain.push(Node {
                    span: Span {
                        lo: else_lo,
                        hi: self.pos,
                    },
                    kind: NodeKind::Leaf,
                });
                let mark2 = self.pos;
                self.skip_trivia();
                if !self.at_end() && (self.cur_text() == "{" || self.cur_text() == "if") {
                    self.pos = mark2;
                    chain.push(self.node());
                }
            } else {
                self.pos = mark;
            }
        }
        Node {
            span: Span { lo, hi: self.pos },
            kind: NodeKind::Ctrl {
                kw,
                head,
                body,
                chain,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Ast {
        let (tokens, ast) = parse_source(src);
        assert_eq!(ast.print(&tokens), src, "print must reproduce source");
        ast.validate_tiling().expect("spans tile");
        let (tokens2, ast2) = parse_source(&ast.print(&tokens));
        assert_eq!(tokens, tokens2);
        assert_eq!(ast, ast2, "reparse must be identical");
        ast
    }

    fn fn_names(items: &[Item]) -> Vec<&str> {
        items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn parses_items_with_names() {
        let src = r#"
            //! doc
            use std::fmt;
            pub struct Foo { x: u32 }
            enum Bar { A, B }
            pub(crate) const LIMIT: usize = 4;
            static NAME: &str = "x";
            type Alias = Vec<u8>;
            pub fn top(a: u32) -> u32 { a + 1 }
            mod inner {
                pub fn nested() {}
            }
        "#;
        let ast = roundtrip(src);
        let kinds: Vec<&ItemKind> = ast.items.iter().map(|i| &i.kind).collect();
        assert!(matches!(kinds[0], ItemKind::Use));
        assert!(matches!(kinds[1], ItemKind::Struct(n) if n == "Foo"));
        assert!(matches!(kinds[2], ItemKind::Enum(n) if n == "Bar"));
        assert!(matches!(kinds[3], ItemKind::Const(n) if n == "LIMIT"));
        assert!(matches!(kinds[4], ItemKind::Static(n) if n == "NAME"));
        assert!(matches!(kinds[5], ItemKind::TypeAlias(n) if n == "Alias"));
        assert!(matches!(kinds[6], ItemKind::Fn(f) if f.name == "top"));
        match &kinds[7] {
            ItemKind::Mod(m) => {
                assert_eq!(m.name, "inner");
                assert_eq!(fn_names(m.items.as_ref().unwrap()), ["nested"]);
            }
            other => panic!("expected mod, got {other:?}"),
        }
    }

    #[test]
    fn impl_blocks_resolve_self_type_and_trait() {
        let src = "
            impl<T: Clone> Foo<T> { fn a(&self) {} fn b() {} }
            impl fmt::Display for Foo<u32> { fn fmt(&self) {} }
            impl abs_sim::Kernel { fn c() {} }
        ";
        let ast = roundtrip(src);
        let impls: Vec<&ImplBlock> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Impl(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(impls.len(), 3);
        assert_eq!(impls[0].self_ty, "Foo");
        assert_eq!(impls[0].of_trait, None);
        assert_eq!(fn_names(&impls[0].items), ["a", "b"]);
        assert_eq!(impls[1].self_ty, "Foo");
        assert_eq!(impls[1].of_trait.as_deref(), Some("Display"));
        assert_eq!(impls[2].self_ty, "Kernel");
    }

    #[test]
    fn fn_bodies_become_structural_trees() {
        let src = "fn f(n: usize) { if n > 0 { g(n); } else { h(); } for i in 0..n { q(i); } }";
        let ast = roundtrip(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else {
            panic!()
        };
        let body = f.body.as_ref().unwrap();
        let NodeKind::Group { children, .. } = &body.kind else {
            panic!()
        };
        let ctrls: Vec<CtrlKw> = children
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Ctrl { kw, .. } => Some(*kw),
                _ => None,
            })
            .collect();
        assert_eq!(ctrls, [CtrlKw::If, CtrlKw::For]);
        // The if has a body and an else chain.
        let NodeKind::Ctrl { body, chain, .. } = &children
            .iter()
            .find_map(|n| match &n.kind {
                NodeKind::Ctrl { kw: CtrlKw::If, .. } => Some(&n.kind),
                _ => None,
            })
            .unwrap()
        else {
            panic!()
        };
        assert!(body.is_some());
        assert_eq!(chain.len(), 2); // `else` leaf + block
    }

    #[test]
    fn if_let_struct_pattern_does_not_steal_the_body() {
        let src = "fn f() { if let Point { x, y } = p { use_it(x, y); } }";
        let ast = roundtrip(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else {
            panic!()
        };
        let NodeKind::Group { children, .. } = &f.body.as_ref().unwrap().kind else {
            panic!()
        };
        let NodeKind::Ctrl { head, body, .. } = &children[0].kind else {
            panic!("expected if ctrl, got {:?}", children[0].kind)
        };
        // The pattern's brace group stays in the head; the body is the
        // trailing block containing the call.
        assert!(head
            .iter()
            .any(|n| matches!(&n.kind, NodeKind::Group { delim: Delim::Brace, .. })));
        let body = body.as_ref().unwrap();
        let body_text = print_span(&tokenize(src), body.span);
        assert!(body_text.contains("use_it"), "{body_text}");
    }

    #[test]
    fn match_and_while_and_loop() {
        let src = "fn f(x: u8) { match x { 0 => a(), _ => b(), } while x > 0 { c(); } loop { break; } }";
        let ast = roundtrip(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else {
            panic!()
        };
        let NodeKind::Group { children, .. } = &f.body.as_ref().unwrap().kind else {
            panic!()
        };
        let kws: Vec<CtrlKw> = children
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Ctrl { kw, .. } => Some(*kw),
                _ => None,
            })
            .collect();
        assert_eq!(kws, [CtrlKw::Match, CtrlKw::While, CtrlKw::Loop]);
    }

    #[test]
    fn traits_keep_default_method_bodies() {
        let src = "pub trait T: Clone { fn decl(&self); fn dflt(&self) -> u8 { 0 } }";
        let ast = roundtrip(src);
        let ItemKind::Trait(t) = &ast.items[0].kind else {
            panic!()
        };
        assert_eq!(t.name, "T");
        let fns: Vec<(&str, bool)> = t
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some((f.name.as_str(), f.body.is_some())),
                _ => None,
            })
            .collect();
        assert_eq!(fns, [("decl", false), ("dflt", true)]);
    }

    #[test]
    fn attributes_attach_to_items() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nmod tests { fn t() {} }\n";
        let ast = roundtrip(src);
        assert_eq!(ast.items[0].attrs.len(), 2);
        assert_eq!(ast.items[0].attrs[0].body, "cfg(test)");
        assert_eq!(ast.items[0].attrs[1].body, "derive(Debug)");
    }

    #[test]
    fn inner_attributes_are_their_own_items() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let ast = roundtrip(src);
        assert!(matches!(ast.items[0].kind, ItemKind::InnerAttr));
        assert!(matches!(&ast.items[1].kind, ItemKind::Fn(f) if f.name == "f"));
    }

    #[test]
    fn macro_items_and_foreign_mods() {
        let src = "macro_rules! m { () => {}; }\nthread_local! { static X: u8 = 0; }\nextern \"C\" { fn c(); }\n";
        let ast = roundtrip(src);
        assert!(matches!(&ast.items[0].kind, ItemKind::MacroRules(n) if n == "m"));
        assert!(matches!(&ast.items[1].kind, ItemKind::MacroCall(n) if n == "thread_local"));
        assert!(matches!(ast.items[2].kind, ItemKind::ForeignMod));
    }

    #[test]
    fn lenient_on_garbage() {
        for src in [
            "@@@ ;;; fn",
            "fn unfinished(",
            "impl {",
            "struct",
            "match",
            "if x {",
            "const X: [u8; 3] = [1, 2, 3];",
        ] {
            let (tokens, ast) = parse_source(src);
            assert_eq!(ast.print(&tokens), src, "{src:?}");
            ast.validate_tiling().unwrap_or_else(|e| panic!("{src:?}: {e}"));
        }
    }

    #[test]
    fn const_with_semicolons_in_brackets() {
        let src = "const X: [u8; 3] = [0; 3]; fn after() {}";
        let ast = roundtrip(src);
        assert!(matches!(&ast.items[0].kind, ItemKind::Const(n) if n == "X"));
        assert!(matches!(&ast.items[1].kind, ItemKind::Fn(f) if f.name == "after"));
    }
}
