//! The Dir_i NB directory.
//!
//! "In general, for every memory block, a directory must store as many
//! pointers as the number of processors (say N) in the system. Such a
//! scheme is termed Dir_N NB, for N-pointers-No-Broadcast. In practice, it
//! is possible to maintain just i pointers (i < N) to yield the Dir_i NB
//! scheme. Invalidations are forced to limit the cached copies of a block
//! to i, or to gain exclusive ownership on a write."

use std::collections::BTreeMap;

/// The number of sharer pointers each directory entry can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointerLimit {
    /// `Dir_i NB` with `i` pointers.
    Limited(usize),
    /// `Dir_N NB`: one pointer per processor (no pointer-overflow
    /// invalidations).
    Full,
}

impl PointerLimit {
    /// The paper's Table-1 sweep: 2, 3, 4, 5 and full-map (quoted as 64).
    pub fn paper_sweep() -> [PointerLimit; 5] {
        [
            PointerLimit::Limited(2),
            PointerLimit::Limited(3),
            PointerLimit::Limited(4),
            PointerLimit::Limited(5),
            PointerLimit::Full,
        ]
    }

    /// The concrete pointer count for a machine of `procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if a limited count is zero.
    pub fn pointers(&self, procs: usize) -> usize {
        match *self {
            PointerLimit::Limited(i) => {
                assert!(i > 0, "pointer count must be positive");
                i.min(procs)
            }
            PointerLimit::Full => procs,
        }
    }

    /// Label used in the paper's tables ("2", …, "64").
    pub fn label(&self, procs: usize) -> String {
        self.pointers(procs).to_string()
    }
}

/// One directory entry: the sharer set of a block (dirty iff the single
/// sharer holds it modified).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirEntry {
    sharers: Vec<usize>,
    dirty: bool,
}

impl DirEntry {
    /// The caches holding this block.
    pub fn sharers(&self) -> &[usize] {
        &self.sharers
    }

    /// Whether the (single) copy is modified.
    pub fn dirty(&self) -> bool {
        self.dirty
    }
}

/// The directory: block address → sharer set.
///
/// # Examples
///
/// ```
/// use abs_coherence::directory::{Directory, PointerLimit};
/// let mut d = Directory::new(PointerLimit::Limited(2), 4);
/// assert_eq!(d.add_sharer(100, 0), None);
/// assert_eq!(d.add_sharer(100, 1), None);
/// // Third sharer overflows the 2-pointer entry: one victim is evicted.
/// let victim = d.add_sharer(100, 2);
/// assert!(victim.is_some());
/// assert_eq!(d.sharers(100).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    limit: PointerLimit,
    procs: usize,
    // Ordered so that any iteration over tracked blocks is
    // address-ordered, independent of insertion history and hasher state.
    entries: BTreeMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new(limit: PointerLimit, procs: usize) -> Self {
        assert!(procs > 0, "at least one processor required");
        // Validate limited counts eagerly.
        let _ = limit.pointers(procs);
        Self {
            limit,
            procs,
            entries: BTreeMap::new(),
        }
    }

    /// The pointer limit.
    pub fn limit(&self) -> PointerLimit {
        self.limit
    }

    /// The sharer list of a block (empty if uncached).
    pub fn sharers(&self, block: u64) -> &[usize] {
        self.entries
            .get(&block)
            .map(|e| e.sharers())
            .unwrap_or(&[])
    }

    /// Whether the block is dirty in some cache.
    pub fn is_dirty(&self, block: u64) -> bool {
        self.entries.get(&block).is_some_and(|e| e.dirty)
    }

    /// Adds `proc` as a clean sharer. If the entry's pointers are full,
    /// returns the sharer that must be invalidated to make room (the
    /// protocol picks the first pointer — FIFO replacement). The caller is
    /// responsible for actually invalidating that cache.
    ///
    /// Clears the dirty bit (the caller handles the writeback).
    pub fn add_sharer(&mut self, block: u64, proc: usize) -> Option<usize> {
        let max = self.limit.pointers(self.procs);
        let entry = self.entries.entry(block).or_default();
        entry.dirty = false;
        if entry.sharers.contains(&proc) {
            return None;
        }
        let victim = if entry.sharers.len() >= max {
            Some(entry.sharers.remove(0))
        } else {
            None
        };
        entry.sharers.push(proc);
        victim
    }

    /// Makes `proc` the exclusive dirty owner, returning the sharers that
    /// must be invalidated (all current sharers except `proc`).
    pub fn make_exclusive(&mut self, block: u64, proc: usize) -> Vec<usize> {
        let entry = self.entries.entry(block).or_default();
        let victims: Vec<usize> = entry
            .sharers
            .iter()
            .copied()
            .filter(|&s| s != proc)
            .collect();
        entry.sharers.clear();
        entry.sharers.push(proc);
        entry.dirty = true;
        victims
    }

    /// Removes `proc` from the sharer set (cache eviction). Returns whether
    /// the departing copy was the dirty one.
    pub fn remove_sharer(&mut self, block: u64, proc: usize) -> bool {
        let Some(entry) = self.entries.get_mut(&block) else {
            return false;
        };
        let present = entry.sharers.iter().position(|&s| s == proc);
        let Some(idx) = present else { return false };
        entry.sharers.remove(idx);
        let was_dirty = entry.dirty && entry.sharers.is_empty();
        if entry.sharers.is_empty() {
            self.entries.remove(&block);
        }
        was_dirty
    }

    /// Number of blocks with at least one sharer.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_counts() {
        let counts: Vec<usize> = PointerLimit::paper_sweep()
            .iter()
            .map(|l| l.pointers(64))
            .collect();
        assert_eq!(counts, [2, 3, 4, 5, 64]);
        assert_eq!(PointerLimit::Full.label(64), "64");
    }

    #[test]
    fn limited_clamps_to_procs() {
        assert_eq!(PointerLimit::Limited(8).pointers(4), 4);
    }

    #[test]
    fn add_sharer_dedup() {
        let mut d = Directory::new(PointerLimit::Limited(2), 4);
        assert_eq!(d.add_sharer(7, 1), None);
        assert_eq!(d.add_sharer(7, 1), None);
        assert_eq!(d.sharers(7), &[1]);
    }

    #[test]
    fn overflow_evicts_fifo() {
        let mut d = Directory::new(PointerLimit::Limited(2), 8);
        d.add_sharer(7, 0);
        d.add_sharer(7, 1);
        assert_eq!(d.add_sharer(7, 2), Some(0));
        assert_eq!(d.sharers(7), &[1, 2]);
        assert_eq!(d.add_sharer(7, 3), Some(1));
    }

    #[test]
    fn full_map_never_overflows() {
        let mut d = Directory::new(PointerLimit::Full, 8);
        for p in 0..8 {
            assert_eq!(d.add_sharer(3, p), None, "proc {p}");
        }
        assert_eq!(d.sharers(3).len(), 8);
    }

    #[test]
    fn make_exclusive_invalidates_others() {
        let mut d = Directory::new(PointerLimit::Full, 8);
        for p in 0..4 {
            d.add_sharer(5, p);
        }
        let victims = d.make_exclusive(5, 2);
        assert_eq!(victims, vec![0, 1, 3]);
        assert_eq!(d.sharers(5), &[2]);
        assert!(d.is_dirty(5));
    }

    #[test]
    fn make_exclusive_on_uncached_block() {
        let mut d = Directory::new(PointerLimit::Limited(2), 4);
        assert!(d.make_exclusive(9, 1).is_empty());
        assert!(d.is_dirty(9));
    }

    #[test]
    fn read_after_write_clears_dirty() {
        let mut d = Directory::new(PointerLimit::Full, 4);
        d.make_exclusive(9, 1);
        d.add_sharer(9, 2);
        assert!(!d.is_dirty(9));
        assert_eq!(d.sharers(9), &[1, 2]);
    }

    #[test]
    fn remove_sharer_cleans_up() {
        let mut d = Directory::new(PointerLimit::Full, 4);
        d.make_exclusive(4, 3);
        assert!(d.remove_sharer(4, 3));
        assert_eq!(d.tracked_blocks(), 0);
        assert!(!d.remove_sharer(4, 3));
    }

    #[test]
    fn remove_clean_sharer_is_not_dirty_eviction() {
        let mut d = Directory::new(PointerLimit::Full, 4);
        d.add_sharer(4, 0);
        d.add_sharer(4, 1);
        assert!(!d.remove_sharer(4, 0));
    }
}
