//! The complete memory system: caches + directory + protocol.
//!
//! [`DirectorySystem`] implements [`MemorySystem`], so the `abs-trace`
//! scheduler can drive it directly with a synthetic application — the
//! equivalent of the paper's trace-driven simulations.

use abs_trace::ops::{MemorySystem, RefKind};

use crate::cache::{CacheGeometry, DirectMappedCache, LineState};
use crate::directory::{Directory, PointerLimit};
use crate::stats::CoherenceStats;

/// How synchronization (and optionally all shared) variables are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncCaching {
    /// Everything is cached and kept coherent (the Table-1 configuration).
    #[default]
    Cached,
    /// Synchronization variables bypass the caches; every sync reference is
    /// a two-transaction memory access (the Table-2 configuration:
    /// "disallow caching of synchronization variables").
    UncachedSync,
    /// All shared variables bypass the caches (the RP3/Ultracomputer-style
    /// measurement of Section 2.2: sync traffic was 25.5 %, 49.2 % and
    /// 1.47 % of total for SIMPLE, WEATHER and FFT).
    UncachedShared,
}

/// A directory-coherent multiprocessor memory system.
///
/// # Examples
///
/// ```
/// use abs_coherence::{DirectorySystem, PointerLimit, SyncCaching, CacheGeometry};
/// use abs_trace::ops::{MemorySystem, RefKind};
///
/// let mut sys = DirectorySystem::new(
///     4,
///     CacheGeometry::new(1024, 16),
///     PointerLimit::Limited(2),
///     SyncCaching::Cached,
/// );
/// // Two readers, then a write: the write invalidates both copies.
/// sys.access(0, 0x100, false, RefKind::Shared);
/// sys.access(1, 0x100, false, RefKind::Shared);
/// sys.access(2, 0x100, true, RefKind::Shared);
/// assert!(sys.stats().invalidation_messages >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DirectorySystem {
    geometry: CacheGeometry,
    procs: usize,
    mode: SyncCaching,
    caches: Vec<DirectMappedCache>,
    directory: Directory,
    stats: CoherenceStats,
}

impl DirectorySystem {
    /// Creates a system of `procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0` or the pointer limit is invalid.
    pub fn new(
        procs: usize,
        geometry: CacheGeometry,
        limit: PointerLimit,
        mode: SyncCaching,
    ) -> Self {
        assert!(procs > 0, "at least one processor required");
        Self {
            geometry,
            procs,
            mode,
            caches: (0..procs).map(|_| DirectMappedCache::new(geometry)).collect(),
            directory: Directory::new(limit, procs),
            stats: CoherenceStats::new(),
        }
    }

    /// The paper's machine: 64 processors, 256 KB / 16 B caches.
    pub fn paper_machine(limit: PointerLimit, mode: SyncCaching) -> Self {
        Self::new(64, CacheGeometry::paper(), limit, mode)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// The caching mode in force.
    pub fn mode(&self) -> SyncCaching {
        self.mode
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    fn bypasses_cache(&self, kind: RefKind) -> bool {
        match self.mode {
            SyncCaching::Cached => false,
            SyncCaching::UncachedSync => kind == RefKind::Sync,
            SyncCaching::UncachedShared => {
                kind == RefKind::Sync || kind == RefKind::Shared
            }
        }
    }

    /// Evicts `proc`'s resident copy of whatever `fill` displaced,
    /// returning the extra transactions (dirty writeback).
    fn handle_eviction(&mut self, proc: usize, evicted: Option<(u64, LineState)>) -> u64 {
        let Some((old_block, state)) = evicted else {
            return 0;
        };
        self.directory.remove_sharer(old_block, proc);
        if state == LineState::Dirty {
            self.stats.writebacks += 1;
            2
        } else {
            0
        }
    }

    /// Invalidates `victims`' copies of `block`, returning the number of
    /// messages (one per victim).
    fn invalidate_all(&mut self, block: u64, victims: &[usize]) -> u64 {
        for &v in victims {
            self.caches[v].invalidate(block);
        }
        self.stats.invalidation_messages += victims.len() as u64;
        victims.len() as u64
    }
}

impl MemorySystem for DirectorySystem {
    fn access(&mut self, proc: usize, addr: u64, write: bool, kind: RefKind) {
        debug_assert!(proc < self.procs, "processor id out of range");
        self.stats.record_ref(kind);

        if self.bypasses_cache(kind) {
            // Uncached access: request + response over the network.
            self.stats.traffic_total += 2;
            if kind.is_sync() {
                self.stats.traffic_sync += 2;
            }
            return;
        }

        let block = self.geometry.block_of(addr);
        let mut traffic = 0u64;
        let mut invalidations = 0u64;

        let resident = self.caches[proc].lookup(block);
        if write {
            let was_dirty_here = resident == Some(LineState::Dirty);
            let was_clean_globally = !self.directory.is_dirty(block);
            match resident {
                Some(LineState::Dirty) => {
                    // Write hit on an exclusive copy: silent.
                }
                Some(LineState::Shared) => {
                    // Upgrade: invalidate all other sharers.
                    let victims = self.directory.make_exclusive(block, proc);
                    traffic += 1 + self.invalidate_all(block, &victims);
                    invalidations += victims.len() as u64;
                    self.caches[proc].set_state(block, LineState::Dirty);
                }
                None => {
                    // Write miss: fetch exclusive.
                    self.stats.misses += 1;
                    traffic += 2;
                    if self.directory.is_dirty(block) {
                        // Retrieve the dirty copy from its owner first.
                        self.stats.writebacks += 1;
                        traffic += 2;
                    }
                    let victims = self.directory.make_exclusive(block, proc);
                    traffic += self.invalidate_all(block, &victims);
                    invalidations += victims.len() as u64;
                    let evicted = self.caches[proc].fill(block, LineState::Dirty);
                    traffic += self.handle_eviction(proc, evicted);
                }
            }
            // Figure 1: invalidation count per write to a previously clean
            // block (a block nobody held dirty).
            if was_clean_globally && !was_dirty_here {
                self.stats.clean_write_invalidations.record(invalidations);
            }
        } else {
            match resident {
                Some(_) => {
                    // Read hit: no traffic.
                }
                None => {
                    self.stats.misses += 1;
                    traffic += 2;
                    if self.directory.is_dirty(block) {
                        // Downgrade the dirty owner: it writes back and
                        // keeps a shared copy.
                        let owner = self.directory.sharers(block).first().copied();
                        if let Some(owner) = owner {
                            self.caches[owner].set_state(block, LineState::Shared);
                        }
                        self.stats.writebacks += 1;
                        traffic += 2;
                    }
                    if let Some(victim) = self.directory.add_sharer(block, proc) {
                        // Pointer overflow: one existing copy is evicted.
                        self.caches[victim].invalidate(block);
                        self.stats.invalidation_messages += 1;
                        traffic += 1;
                        invalidations += 1;
                    }
                    let evicted = self.caches[proc].fill(block, LineState::Shared);
                    traffic += self.handle_eviction(proc, evicted);
                }
            }
        }

        self.stats.traffic_total += traffic;
        if kind.is_sync() {
            self.stats.traffic_sync += traffic;
        }
        if invalidations > 0 {
            self.stats.record_invalidating_ref(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(limit: PointerLimit, mode: SyncCaching) -> DirectorySystem {
        DirectorySystem::new(4, CacheGeometry::new(1024, 16), limit, mode)
    }

    #[test]
    fn read_hit_is_free() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0x100, false, RefKind::Shared);
        let t = s.stats().traffic_total;
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().traffic_total, t, "second read must hit");
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn miss_costs_two_transactions() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().traffic_total, 2);
    }

    #[test]
    fn write_upgrade_invalidates_sharers() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        for p in 0..3 {
            s.access(p, 0x100, false, RefKind::Shared);
        }
        s.access(0, 0x100, true, RefKind::Shared);
        assert_eq!(s.stats().invalidation_messages, 2);
        // Figure-1 histogram saw a clean write with 2 invalidations.
        assert_eq!(s.stats().clean_write_invalidations.count(2), 1);
        // The invalidated caches re-miss.
        let misses = s.stats().misses;
        s.access(1, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().misses, misses + 1);
    }

    #[test]
    fn write_hit_dirty_is_silent() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0x100, true, RefKind::Shared);
        let t = s.stats().traffic_total;
        s.access(0, 0x104, true, RefKind::Shared); // same block
        assert_eq!(s.stats().traffic_total, t);
    }

    #[test]
    fn read_of_dirty_block_forces_writeback() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0x100, true, RefKind::Shared);
        s.access(1, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().writebacks, 1);
        // Both now share cleanly; a further read by 0 hits.
        let misses = s.stats().misses;
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().misses, misses);
    }

    #[test]
    fn pointer_overflow_invalidates_on_read() {
        let mut s = tiny(PointerLimit::Limited(2), SyncCaching::Cached);
        s.access(0, 0x100, false, RefKind::Shared);
        s.access(1, 0x100, false, RefKind::Shared);
        let inv = s.stats().invalidation_messages;
        s.access(2, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().invalidation_messages, inv + 1);
        // The victim (processor 0, FIFO) must re-miss.
        let misses = s.stats().misses;
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().misses, misses + 1);
    }

    #[test]
    fn full_map_read_sharing_is_free_after_fill() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        for p in 0..4 {
            s.access(p, 0x100, false, RefKind::Shared);
        }
        assert_eq!(s.stats().invalidation_messages, 0);
    }

    #[test]
    fn uncached_sync_bypasses() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::UncachedSync);
        let flag = abs_trace::ops::SYNC_BASE;
        for _ in 0..10 {
            s.access(0, flag, false, RefKind::Sync);
        }
        assert_eq!(s.stats().traffic_sync, 20);
        assert_eq!(s.stats().traffic_total, 20);
        assert_eq!(s.stats().invalidation_messages, 0);
        // Non-sync still cached.
        s.access(0, 0x100, false, RefKind::Shared);
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().traffic_total, 22);
    }

    #[test]
    fn uncached_shared_bypasses_shared_too() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::UncachedShared);
        s.access(0, 0x100, false, RefKind::Shared);
        s.access(0, 0x100, false, RefKind::Shared);
        assert_eq!(s.stats().traffic_total, 4);
        // Private still cached.
        let p = abs_trace::ops::PRIVATE_BASE;
        s.access(0, p, false, RefKind::Private);
        s.access(0, p, false, RefKind::Private);
        assert_eq!(s.stats().traffic_total, 6);
    }

    #[test]
    fn spinning_on_cached_flag_hits_until_invalidated() {
        // The full-pointer case: a poller re-reads its cached flag copy for
        // free; the setter's write invalidates all pollers at once.
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        let flag = abs_trace::ops::SYNC_BASE;
        for p in 0..3 {
            s.access(p, flag, false, RefKind::Sync);
        }
        let t = s.stats().traffic_total;
        for _ in 0..50 {
            for p in 0..3 {
                s.access(p, flag, false, RefKind::Sync);
            }
        }
        assert_eq!(s.stats().traffic_total, t, "spins must hit in cache");
        s.access(3, flag, true, RefKind::Sync);
        assert_eq!(s.stats().invalidation_messages, 3);
    }

    #[test]
    fn limited_pointers_make_spinning_expensive() {
        // With 2 pointers, three spinners ping-pong: most spins miss.
        let mut full = tiny(PointerLimit::Full, SyncCaching::Cached);
        let mut lim = tiny(PointerLimit::Limited(2), SyncCaching::Cached);
        let flag = abs_trace::ops::SYNC_BASE;
        for sys in [&mut full, &mut lim] {
            for _ in 0..50 {
                for p in 0..3 {
                    sys.access(p, flag, false, RefKind::Sync);
                }
            }
        }
        assert!(
            lim.stats().traffic_total > 10 * full.stats().traffic_total.max(1),
            "limited {} full {}",
            lim.stats().traffic_total,
            full.stats().traffic_total
        );
    }

    #[test]
    fn conflict_eviction_writes_back_dirty() {
        // 1024-byte cache, 16-byte blocks: 64 lines. Blocks 0 and 64
        // conflict.
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0, true, RefKind::Shared);
        s.access(0, 64 * 16, false, RefKind::Shared);
        assert_eq!(s.stats().writebacks, 1);
        // Directory no longer tracks proc 0 for block 0.
        let misses = s.stats().misses;
        s.access(0, 0, false, RefKind::Shared);
        assert_eq!(s.stats().misses, misses + 1);
    }

    #[test]
    fn dirty_write_miss_transfers_ownership() {
        let mut s = tiny(PointerLimit::Full, SyncCaching::Cached);
        s.access(0, 0x200, true, RefKind::Shared);
        s.access(1, 0x200, true, RefKind::Shared);
        // Writeback from 0 plus invalidation of 0's copy.
        assert_eq!(s.stats().writebacks, 1);
        assert_eq!(s.stats().invalidation_messages, 1);
        // Now 1 owns it dirty; 1's write hits silently.
        let t = s.stats().traffic_total;
        s.access(1, 0x200, true, RefKind::Shared);
        assert_eq!(s.stats().traffic_total, t);
    }
}
