//! A bus-based snoopy-cache multiprocessor (Section 2.1's contrast case).
//!
//! "The widespread sharing that occurs with synchronization variables is
//! not a problem when used in bus-based snoopy-cache multiprocessors.
//! Because snoopy-cache-based protocols perform broadcast invalidates or
//! updates, a variable shared among all processors generates no more
//! traffic on the shared bus than a variable shared among only two
//! processors. The limitation of snoopy-based schemes, however, is that
//! they do not scale."
//!
//! [`SnoopyBus`] implements a classic MSI write-invalidate protocol over a
//! single shared bus: every miss and every upgrade is **one** bus
//! transaction regardless of how many caches must be invalidated (the
//! broadcast is free), so synchronization variables are cheap — but every
//! transaction serializes on the one bus, whose occupancy is the scaling
//! limit the paper points at.

use abs_trace::ops::{MemorySystem, RefKind};

use crate::cache::{CacheGeometry, DirectMappedCache, LineState};

/// Counters for the snoopy machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnoopyStats {
    /// Total references processed.
    pub refs: u64,
    /// Of those, synchronization references.
    pub refs_sync: u64,
    /// Bus transactions (miss fills, upgrades, writebacks).
    pub bus_transactions: u64,
    /// Bus transactions attributable to sync references.
    pub bus_sync: u64,
    /// Broadcast invalidations performed (each one bus transaction, any
    /// number of caches).
    pub broadcast_invalidations: u64,
    /// Cycles ticked (for occupancy accounting).
    pub cycles: u64,
}

impl SnoopyStats {
    /// Bus transactions per cycle — >1.0 is physically impossible on a real
    /// bus, so values approaching 1 mean saturation.
    pub fn bus_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_transactions as f64 / self.cycles as f64
        }
    }

    /// Sync share of bus traffic, the Table-2 analogue.
    pub fn pct_sync_bus(&self) -> f64 {
        if self.bus_transactions == 0 {
            0.0
        } else {
            100.0 * self.bus_sync as f64 / self.bus_transactions as f64
        }
    }
}

/// A snoopy-bus MSI machine implementing [`MemorySystem`].
///
/// # Examples
///
/// ```
/// use abs_coherence::snoopy::SnoopyBus;
/// use abs_coherence::CacheGeometry;
/// use abs_trace::ops::{MemorySystem, RefKind};
///
/// let mut bus = SnoopyBus::new(4, CacheGeometry::new(1024, 16));
/// // Four readers then one writer: the write is ONE bus transaction no
/// // matter how many copies it kills.
/// for p in 0..4 {
///     bus.access(p, 0x100, false, RefKind::Shared);
/// }
/// let before = bus.stats().bus_transactions;
/// bus.access(0, 0x100, true, RefKind::Shared);
/// assert_eq!(bus.stats().bus_transactions, before + 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SnoopyBus {
    procs: usize,
    geometry: CacheGeometry,
    caches: Vec<DirectMappedCache>,
    stats: SnoopyStats,
}

impl SnoopyBus {
    /// Creates a machine of `procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    pub fn new(procs: usize, geometry: CacheGeometry) -> Self {
        assert!(procs > 0, "at least one processor required");
        Self {
            procs,
            geometry,
            caches: (0..procs).map(|_| DirectMappedCache::new(geometry)).collect(),
            stats: SnoopyStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SnoopyStats {
        &self.stats
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    fn bus(&mut self, sync: bool) {
        self.stats.bus_transactions += 1;
        if sync {
            self.stats.bus_sync += 1;
        }
    }

    /// Invalidates every other cache's copy of `block` in one broadcast.
    fn broadcast_invalidate(&mut self, block: u64, except: usize) {
        let mut any = false;
        for (p, cache) in self.caches.iter_mut().enumerate() {
            if p != except && cache.invalidate(block).is_some() {
                any = true;
            }
        }
        if any {
            self.stats.broadcast_invalidations += 1;
        }
    }

    /// Downgrades any dirty copy elsewhere to shared (snoop hit supplies
    /// the data).
    fn downgrade_others(&mut self, block: u64, except: usize) {
        for (p, cache) in self.caches.iter_mut().enumerate() {
            if p != except && cache.lookup(block) == Some(LineState::Dirty) {
                cache.set_state(block, LineState::Shared);
            }
        }
    }
}

impl MemorySystem for SnoopyBus {
    fn access(&mut self, proc: usize, addr: u64, write: bool, kind: RefKind) {
        debug_assert!(proc < self.procs, "processor id out of range");
        self.stats.refs += 1;
        let sync = kind.is_sync();
        if sync {
            self.stats.refs_sync += 1;
        }
        let block = self.geometry.block_of(addr);
        let resident = self.caches[proc].lookup(block);
        if write {
            match resident {
                Some(LineState::Dirty) => {}
                Some(LineState::Shared) => {
                    // Bus upgrade: one transaction, broadcast invalidation.
                    self.bus(sync);
                    self.broadcast_invalidate(block, proc);
                    self.caches[proc].set_state(block, LineState::Dirty);
                }
                None => {
                    // Bus read-exclusive: one transaction.
                    self.bus(sync);
                    self.broadcast_invalidate(block, proc);
                    let evicted = self.caches[proc].fill(block, LineState::Dirty);
                    if let Some((_, LineState::Dirty)) = evicted {
                        self.bus(sync); // writeback
                    }
                }
            }
        } else if resident.is_none() {
            // Bus read: one transaction; a dirty peer snarfs in and
            // downgrades.
            self.bus(sync);
            self.downgrade_others(block, proc);
            let evicted = self.caches[proc].fill(block, LineState::Shared);
            if let Some((_, LineState::Dirty)) = evicted {
                self.bus(sync); // writeback
            }
        }
    }

    fn tick(&mut self, _cycle: u64) {
        self.stats.cycles = self.stats.cycles.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::PointerLimit;
    use crate::system::{DirectorySystem, SyncCaching};
    use abs_trace::Scheduler;

    fn tiny() -> SnoopyBus {
        SnoopyBus::new(4, CacheGeometry::new(1024, 16))
    }

    #[test]
    fn read_hits_are_free() {
        let mut b = tiny();
        b.access(0, 0x40, false, RefKind::Shared);
        let t = b.stats().bus_transactions;
        b.access(0, 0x40, false, RefKind::Shared);
        assert_eq!(b.stats().bus_transactions, t);
    }

    #[test]
    fn broadcast_costs_one_regardless_of_sharers() {
        // 2 sharers vs 4 sharers: the invalidating write costs the same.
        let cost = |sharers: usize| {
            let mut b = tiny();
            for p in 0..sharers {
                b.access(p, 0x40, false, RefKind::Shared);
            }
            let before = b.stats().bus_transactions;
            b.access(0, 0x40, true, RefKind::Shared);
            b.stats().bus_transactions - before
        };
        assert_eq!(cost(2), cost(4));
        assert_eq!(cost(4), 1);
    }

    #[test]
    fn dirty_peer_downgrades_on_read() {
        let mut b = tiny();
        b.access(0, 0x80, true, RefKind::Shared);
        b.access(1, 0x80, false, RefKind::Shared);
        // Processor 0 still hits (shared) afterwards.
        let t = b.stats().bus_transactions;
        b.access(0, 0x80, false, RefKind::Shared);
        assert_eq!(b.stats().bus_transactions, t);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut b = tiny();
        b.access(0, 0, true, RefKind::Shared);
        let t = b.stats().bus_transactions;
        // 64 lines: block 64 conflicts with block 0.
        b.access(0, 64 * 16, false, RefKind::Shared);
        assert_eq!(b.stats().bus_transactions, t + 2); // fill + writeback
    }

    #[test]
    fn spinning_is_cheap_on_a_bus() {
        // The Section-2.1 point: barrier spinning costs the bus almost
        // nothing — each release is one broadcast however many spinners.
        let mut b = tiny();
        let flag = abs_trace::ops::SYNC_BASE;
        for p in 0..3 {
            b.access(p, flag, false, RefKind::Sync);
        }
        let t = b.stats().bus_transactions;
        for _ in 0..100 {
            for p in 0..3 {
                b.access(p, flag, false, RefKind::Sync);
            }
        }
        assert_eq!(b.stats().bus_transactions, t, "spins hit in cache");
        b.access(3, flag, true, RefKind::Sync);
        assert_eq!(b.stats().bus_transactions, t + 1, "one broadcast");
    }

    #[test]
    fn sync_share_far_below_directory_machine() {
        // Run WEATHER on both machines: the bus's sync share of traffic is
        // a fraction of the limited-pointer directory's.
        let app = abs_trace::apps::weather_like();
        let mut bus = SnoopyBus::new(32, CacheGeometry::paper());
        Scheduler::new(app.clone(), 32, 5).run(&mut bus);
        let mut dir = DirectorySystem::new(
            32,
            CacheGeometry::paper(),
            PointerLimit::Limited(2),
            SyncCaching::Cached,
        );
        Scheduler::new(app, 32, 5).run(&mut dir);
        let dir_sync_share =
            100.0 * dir.stats().traffic_sync as f64 / dir.stats().traffic_total as f64;
        assert!(
            bus.stats().pct_sync_bus() < dir_sync_share / 2.0,
            "bus {} vs directory {}",
            bus.stats().pct_sync_bus(),
            dir_sync_share
        );
    }

    #[test]
    fn bus_occupancy_grows_with_processors() {
        // The scaling limit: more processors push the single bus toward
        // saturation (occupancy -> 1).
        let occupancy = |procs: usize| {
            let mut b = SnoopyBus::new(procs, CacheGeometry::new(16 * 1024, 16));
            Scheduler::new(abs_trace::apps::fft_like(), procs, 3).run(&mut b);
            b.stats().bus_occupancy()
        };
        let small = occupancy(4);
        let large = occupancy(32);
        assert!(large > small, "occupancy {small} -> {large} must grow");
    }

    #[test]
    fn occupancy_zero_without_ticks() {
        let b = tiny();
        assert_eq!(b.stats().bus_occupancy(), 0.0);
        assert_eq!(b.stats().pct_sync_bus(), 0.0);
    }
}
