//! Direct-mapped caches with the paper's geometry.
//!
//! "The simulations used direct-mapped caches of size 256KBytes and block
//! size 16 bytes."

/// Cache geometry: total size and block size, both powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total cache capacity in bytes.
    pub cache_bytes: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// The paper's geometry: 256 KB direct-mapped, 16-byte blocks.
    pub fn paper() -> Self {
        Self {
            cache_bytes: 256 * 1024,
            block_bytes: 16,
        }
    }

    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two and the cache holds at
    /// least one block.
    pub fn new(cache_bytes: usize, block_bytes: usize) -> Self {
        assert!(cache_bytes.is_power_of_two(), "cache size must be 2^k");
        assert!(block_bytes.is_power_of_two(), "block size must be 2^k");
        assert!(cache_bytes >= block_bytes, "cache must hold a block");
        Self {
            cache_bytes,
            block_bytes,
        }
    }

    /// Number of lines in a direct-mapped cache.
    pub fn lines(&self) -> usize {
        self.cache_bytes / self.block_bytes
    }

    /// The block address (block-aligned index) containing a byte address.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes as u64
    }

    /// The direct-mapped line index of a block address.
    pub fn line_of(&self, block: u64) -> usize {
        (block % self.lines() as u64) as usize
    }
}

/// Coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Clean copy; may be shared with other caches.
    Shared,
    /// Modified copy; the only copy in any cache.
    Dirty,
}

/// One processor's direct-mapped cache.
///
/// # Examples
///
/// ```
/// use abs_coherence::cache::{CacheGeometry, DirectMappedCache, LineState};
/// let mut c = DirectMappedCache::new(CacheGeometry::new(1024, 16));
/// let block = 42;
/// assert!(c.lookup(block).is_none());
/// c.fill(block, LineState::Shared);
/// assert_eq!(c.lookup(block), Some(LineState::Shared));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectMappedCache {
    geometry: CacheGeometry,
    tags: Vec<Option<(u64, LineState)>>,
}

impl DirectMappedCache {
    /// Creates an empty cache.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self {
            geometry,
            tags: vec![None; geometry.lines()],
        }
    }

    /// The geometry in force.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the state of `block` if it is resident.
    pub fn lookup(&self, block: u64) -> Option<LineState> {
        match self.tags[self.geometry.line_of(block)] {
            Some((tag, state)) if tag == block => Some(state),
            _ => None,
        }
    }

    /// Installs `block` with `state`, returning the evicted resident
    /// `(block, state)` if the line held a *different* block.
    pub fn fill(&mut self, block: u64, state: LineState) -> Option<(u64, LineState)> {
        let line = self.geometry.line_of(block);
        let evicted = match self.tags[line] {
            Some((tag, old)) if tag != block => Some((tag, old)),
            _ => None,
        };
        self.tags[line] = Some((block, state));
        evicted
    }

    /// Upgrades or downgrades the state of a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn set_state(&mut self, block: u64, state: LineState) {
        let line = self.geometry.line_of(block);
        match &mut self.tags[line] {
            Some((tag, s)) if *tag == block => *s = state,
            _ => panic!("block {block} not resident"),
        }
    }

    /// Removes `block` if resident, returning its state.
    pub fn invalidate(&mut self, block: u64) -> Option<LineState> {
        let line = self.geometry.line_of(block);
        match self.tags[line] {
            Some((tag, state)) if tag == block => {
                self.tags[line] = None;
                Some(state)
            }
            _ => None,
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DirectMappedCache {
        DirectMappedCache::new(CacheGeometry::new(256, 16)) // 16 lines
    }

    #[test]
    fn paper_geometry() {
        let g = CacheGeometry::paper();
        assert_eq!(g.lines(), 16384);
        assert_eq!(g.block_of(31), 1);
        assert_eq!(g.block_of(32), 2);
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(5), None);
        assert_eq!(c.fill(5, LineState::Shared), None);
        assert_eq!(c.lookup(5), Some(LineState::Shared));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut c = small();
        c.fill(3, LineState::Dirty);
        // Block 19 maps to the same line (19 % 16 == 3).
        let evicted = c.fill(19, LineState::Shared);
        assert_eq!(evicted, Some((3, LineState::Dirty)));
        assert_eq!(c.lookup(3), None);
        assert_eq!(c.lookup(19), Some(LineState::Shared));
    }

    #[test]
    fn refill_same_block_is_not_eviction() {
        let mut c = small();
        c.fill(7, LineState::Shared);
        assert_eq!(c.fill(7, LineState::Dirty), None);
        assert_eq!(c.lookup(7), Some(LineState::Dirty));
    }

    #[test]
    fn set_state_upgrades() {
        let mut c = small();
        c.fill(9, LineState::Shared);
        c.set_state(9, LineState::Dirty);
        assert_eq!(c.lookup(9), Some(LineState::Dirty));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn set_state_missing_panics() {
        small().set_state(1, LineState::Dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(2, LineState::Shared);
        assert_eq!(c.invalidate(2), Some(LineState::Shared));
        assert_eq!(c.invalidate(2), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        CacheGeometry::new(1000, 16);
    }
}
