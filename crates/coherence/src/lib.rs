//! Directory-based cache-coherence simulation (Section 2).
//!
//! The paper's motivation rests on trace-driven simulations of a
//! 64-processor machine with 256 KB direct-mapped caches, 16-byte blocks,
//! and a **Dir_i NB** directory protocol (Censier–Feautrier directories
//! limited to `i` pointers, no broadcast, as classified by
//! Agarwal–Simoni–Hennessy–Horowitz): at most `i` cached copies of any
//! block may exist; a read that would create copy `i + 1` forces an
//! invalidation of an existing copy, and a write invalidates every other
//! copy.
//!
//! This crate implements that machine as a [`trace::MemorySystem`]
//! (`abs-trace`'s scheduler drives it), and accounts for exactly the
//! quantities behind the paper's exhibits:
//!
//! * **Figure 1** — the histogram of invalidations per write to a
//!   previously clean block.
//! * **Table 1** — the percentage of synchronization vs non-synchronization
//!   references that cause at least one invalidation, for
//!   `i ∈ {2, 3, 4, 5, 64}`.
//! * **Table 2** — with synchronization variables *uncached*, their network
//!   traffic as a percentage of total memory traffic.
//!
//! [`trace::MemorySystem`]: abs_trace::ops::MemorySystem

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod directory;
pub mod snoopy;
pub mod stats;
pub mod system;

pub use cache::{CacheGeometry, DirectMappedCache, LineState};
pub use directory::{Directory, PointerLimit};
pub use snoopy::{SnoopyBus, SnoopyStats};
pub use stats::CoherenceStats;
pub use system::{DirectorySystem, SyncCaching};
