//! Self-contained pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit-state generator, used mainly to expand a
//!   single seed into the larger state of other generators and to derive
//!   independent per-run seeds.
//! * [`Xoshiro256PlusPlus`] — the workhorse generator used by every
//!   simulator. It is fast, has 256 bits of state, and passes stringent
//!   statistical test batteries.
//!
//! Both are implemented from the public-domain reference algorithms by
//! Blackman and Vigna. Keeping them in-tree (rather than depending on an
//! external crate) guarantees that simulation results are reproducible
//! bit-for-bit regardless of dependency upgrades, which matters because
//! `EXPERIMENTS.md` records concrete numbers tied to seeds.

use std::ops::Range;

/// SplitMix64: a 64-bit generator with 64 bits of state.
///
/// Primarily used for seed expansion and seed derivation. Every distinct
/// input state produces a full-period sequence over all 2^64 outputs.
///
/// # Examples
///
/// ```
/// use abs_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// xoshiro256++ 1.0: the workspace's primary generator.
///
/// # Examples
///
/// ```
/// use abs_sim::rng::Xoshiro256PlusPlus;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let x = rng.next_range_u64(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the algorithm's authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the only invalid one; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// unbiased multiply-and-reject method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: multiply a 64-bit random by the bound and keep the
        // high word, rejecting the small biased region of the low word.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn next_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_below(range.end - range.start)
    }

    /// Fills `out` with uniformly distributed values in `[0, bound)`.
    ///
    /// This is the batched form of [`next_below`](Self::next_below) for
    /// mega-`N` state initialization: the Lemire rejection threshold is
    /// computed once for the whole batch instead of once per rejected
    /// draw, and the multiply-high loop stays tight. The generator
    /// consumes **exactly** the same `next_u64` stream as the equivalent
    /// sequence of `next_below(bound)` calls — the rejection condition
    /// `low_word < 2^64 mod bound` is identical — so batching never
    /// changes simulation results (asserted by the test suite).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn fill_below(&mut self, bound: u64, out: &mut [u64]) {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        for slot in out {
            let mut m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            while (m as u64) < threshold {
                m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            }
            *slot = (m >> 64) as u64;
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below_usize(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 bits of
    /// precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Values of `p` outside `[0, 1]` are clamped.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below_usize(slice.len())])
        }
    }

    /// Draws `n` arrival times uniformly from `[0, span]` (inclusive of the
    /// endpoints), sorted ascending.
    ///
    /// This is the paper's Section-5 arrival model: each of the `n`
    /// synchronizing processors "has a uniform probability of appearing at
    /// any time instant during the interval A". A `span` of zero yields `n`
    /// simultaneous arrivals at cycle zero.
    pub fn uniform_arrivals(&mut self, n: usize, span: u64) -> Vec<u64> {
        let mut arrivals = vec![0u64; n];
        if span > 0 {
            // Batched draw; consumes the same stream as n next_below calls.
            self.fill_below(span + 1, &mut arrivals);
        }
        arrivals.sort_unstable();
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism across instances.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn splitmix_known_answer() {
        // Known-answer test: splitmix64(0) first output is 0xE220A8397B1DCDAF.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for bound in [1u64, 2, 3, 10, 100, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256PlusPlus::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn fill_below_matches_sequential_draws() {
        // The batched path must consume the exact next_u64 stream the
        // one-at-a-time path does, including through Lemire rejections
        // (exercised by awkward bounds near powers of two).
        for bound in [1u64, 2, 3, 10, 1001, (1 << 63) + 1, u64::MAX - 1] {
            let mut batched = Xoshiro256PlusPlus::seed_from_u64(0xF1FF);
            let mut serial = Xoshiro256PlusPlus::seed_from_u64(0xF1FF);
            let mut out = vec![0u64; 257];
            batched.fill_below(bound, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, serial.next_below(bound), "bound {bound} draw {i}");
            }
            // Generator states line up afterwards too.
            assert_eq!(batched.next_u64(), serial.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn fill_below_zero_panics() {
        Xoshiro256PlusPlus::seed_from_u64(0).fill_below(0, &mut [0; 4]);
    }

    #[test]
    fn next_range_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..200 {
            let v = rng.next_range_u64(17..23);
            assert!((17..23).contains(&v));
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.next_bool(0.0)));
        assert!((0..100).all(|_| rng.next_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn uniform_arrivals_sorted_and_bounded() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let arr = rng.uniform_arrivals(64, 1000);
        assert_eq!(arr.len(), 64);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| t <= 1000));
    }

    #[test]
    fn uniform_arrivals_zero_span() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let arr = rng.uniform_arrivals(16, 0);
        assert!(arr.iter().all(|&t| t == 0));
    }

    #[test]
    fn uniform_arrivals_mean_near_half_span() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let arr = rng.uniform_arrivals(10_000, 1000);
        let mean: f64 = arr.iter().map(|&t| t as f64).sum::<f64>() / arr.len() as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean {mean}");
    }
}
