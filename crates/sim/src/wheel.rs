//! A bucketed time wheel for the event-driven skip-ahead kernels.
//!
//! Every skip-ahead kernel needs three operations on the set of future
//! wake-ups (processor arrivals, backoff expiries, resource/circuit hold
//! completions):
//!
//! * schedule a wake-up at an absolute cycle,
//! * pop everything due at the current cycle (in ascending processor-id
//!   order, matching the cycle stepper's id-ordered activation scan), and
//! * peek the earliest pending wake-up so the clock can jump over dead
//!   cycles.
//!
//! A classic hashed timing wheel covers the common case: wake-ups landing
//! within the next [`TimeWheel::SLOTS`] cycles go into the slot
//! `time % SLOTS`, so scheduling and popping are O(1) amortized.
//! Exponential backoff also produces *far* wake-ups (delays grow as
//! `base^k`, unbounded for the paper's uncapped curves), which overflow
//! into a sorted map keyed by absolute time and migrate into the wheel as
//! the clock approaches them. The structure never inspects more than the
//! due slot per cycle on the hot path; the O(SLOTS) scan happens only on
//! [`TimeWheel::peek_min`], which the kernel calls exactly when nothing is
//! runnable (i.e. when it is about to skip cycles anyway).

use std::collections::BTreeMap;

/// A future wake-up: `(due cycle, processor id)`.
type Entry = (u64, usize);

/// A bucketed time wheel over absolute simulation cycles.
///
/// # Examples
///
/// ```
/// use abs_sim::wheel::TimeWheel;
///
/// let mut wheel = TimeWheel::new(0);
/// wheel.schedule(5, 1);
/// wheel.schedule(5, 0);
/// wheel.schedule(1_000_000, 2); // far future: overflows, still correct
/// assert_eq!(wheel.peek_min(), Some(5));
/// let mut due = Vec::new();
/// wheel.pop_due(5, &mut due);
/// assert_eq!(due, vec![0, 1]); // ascending id order
/// assert_eq!(wheel.peek_min(), Some(1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct TimeWheel {
    /// `slots[t % SLOTS]` holds near wake-ups due at cycle `t`.
    slots: Vec<Vec<Entry>>,
    /// Bit `s` set iff `slots[s]` is non-empty: `peek_min` scans these four
    /// words instead of probing up to [`Self::SLOTS`] vectors.
    occupancy: [u64; Self::SLOTS / 64],
    /// Wake-ups at or beyond `horizon`, keyed by due cycle.
    far: BTreeMap<u64, Vec<usize>>,
    /// Slots cover due cycles in `[now, horizon)`; `horizon = now + SLOTS`.
    now: u64,
    /// Total scheduled wake-ups not yet popped.
    len: usize,
}

impl TimeWheel {
    /// Number of near slots; wake-ups within this many cycles of `now` are
    /// O(1) to schedule and pop. Must be a power of two.
    pub const SLOTS: usize = 256;

    /// Creates a wheel whose clock starts at `now`.
    pub fn new(now: u64) -> Self {
        Self {
            slots: vec![Vec::new(); Self::SLOTS],
            occupancy: [0; Self::SLOTS / 64],
            far: BTreeMap::new(),
            now,
            len: 0,
        }
    }

    /// Marks slot `s` occupied.
    #[inline]
    fn mark(&mut self, s: usize) {
        self.occupancy[s / 64] |= 1u64 << (s % 64);
    }

    /// Scheduled wake-ups not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no wake-up is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules a wake-up for processor `id` at absolute cycle `time`.
    ///
    /// `time` may not precede the wheel's current cycle (a wake-up in the
    /// past could never be popped).
    pub fn schedule(&mut self, time: u64, id: usize) {
        debug_assert!(time >= self.now, "wake-up at {time} scheduled in the past of {}", self.now);
        self.len += 1;
        if time - self.now < Self::SLOTS as u64 {
            let s = (time % Self::SLOTS as u64) as usize;
            self.slots[s].push((time, id));
            self.mark(s);
        } else {
            self.far.entry(time).or_default().push(id);
        }
    }

    /// Advances the clock to `now` and appends every wake-up due at or
    /// before `now` to `due`, sorted by processor id.
    ///
    /// The kernel advances the clock either by one cycle or by jumping to
    /// [`peek_min`](Self::peek_min), so in practice every popped wake-up is
    /// due *exactly* at `now`; the `<=` is defensive.
    pub fn pop_due(&mut self, now: u64, due: &mut Vec<usize>) {
        due.clear();
        debug_assert!(now >= self.now, "clock moved backwards");
        // Migrate far wake-ups that entered the slot horizon. Jumps land on
        // the earliest pending wake-up, so a jump across the horizon moves
        // exactly the entries that are now near.
        let horizon = now.saturating_add(Self::SLOTS as u64);
        while let Some((&t, _)) = self.far.first_key_value() {
            if t >= horizon {
                break;
            }
            let ids = self.far.remove(&t).expect("peeked key exists"); // abs-lint: allow(panic-path) -- the key was just peeked from the same map
            let s = (t % Self::SLOTS as u64) as usize;
            for id in ids {
                self.slots[s].push((t, id));
            }
            self.mark(s);
        }
        self.now = now;
        let s = (now % Self::SLOTS as u64) as usize;
        let slot = &mut self.slots[s];
        let mut i = 0;
        while i < slot.len() {
            if slot[i].0 <= now {
                debug_assert_eq!(slot[i].0, now, "due wake-up skipped over");
                due.push(slot.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        if slot.is_empty() {
            self.occupancy[s / 64] &= !(1u64 << (s % 64));
        }
        self.len -= due.len();
        due.sort_unstable();
    }

    /// The earliest pending wake-up cycle, or `None` when empty.
    ///
    /// Called only when the kernel has nothing runnable and is about to
    /// jump the clock. Every near entry's due time is in `[now, now +
    /// SLOTS)` (dues at `now` are popped before the clock moves, and jumps
    /// land on the minimum, so nothing is ever left behind the clock),
    /// which means a slot holds at most one distinct due time — two times
    /// with the same residue would be `SLOTS` apart. The first occupied
    /// slot in circular time order from `now` therefore holds the minimum;
    /// the occupancy bitmap finds it in at most `SLOTS / 64 + 1` word
    /// scans (no per-slot probing). The far map only holds times at or
    /// beyond the horizon, so it cannot undercut a near hit.
    pub fn peek_min(&self) -> Option<u64> {
        if let Some(s) = self.first_occupied() {
            let &(slot_t, _) = self.slots[s]
                .first()
                .expect("occupancy bit set on an empty slot"); // abs-lint: allow(panic-path) -- bits are cleared whenever a slot drains
            debug_assert!(slot_t >= self.now, "stale entry behind the clock");
            return Some(slot_t);
        }
        self.far.first_key_value().map(|(&t, _)| t)
    }

    /// Index of the first occupied slot in circular order starting at
    /// `now % SLOTS`, via the occupancy bitmap.
    fn first_occupied(&self) -> Option<usize> {
        const WORDS: usize = TimeWheel::SLOTS / 64;
        let start = (self.now % Self::SLOTS as u64) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);
        // Head of the start word (bits at or after `start`).
        let head = self.occupancy[start_word] & (u64::MAX << start_bit);
        if head != 0 {
            return Some(start_word * 64 + head.trailing_zeros() as usize);
        }
        // Remaining words in circular order, ending with the wrapped tail
        // of the start word (bits before `start`).
        for step in 1..=WORDS {
            let w = (start_word + step) % WORDS;
            let mut bits = self.occupancy[w];
            if w == start_word {
                bits &= (1u64 << start_bit) - 1;
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(wheel: &mut TimeWheel, now: u64) -> Vec<usize> {
        let mut due = Vec::new();
        wheel.pop_due(now, &mut due);
        due
    }

    #[test]
    fn empty_wheel() {
        let wheel = TimeWheel::new(7);
        assert!(wheel.is_empty());
        assert_eq!(wheel.peek_min(), None);
    }

    #[test]
    fn pops_in_id_order() {
        let mut wheel = TimeWheel::new(0);
        for id in [5usize, 1, 9, 0] {
            wheel.schedule(3, id);
        }
        assert_eq!(wheel.len(), 4);
        assert_eq!(pop(&mut wheel, 2), Vec::<usize>::new());
        assert_eq!(pop(&mut wheel, 3), vec![0, 1, 5, 9]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn near_and_far_interleave() {
        let mut wheel = TimeWheel::new(0);
        wheel.schedule(2, 0);
        wheel.schedule(2 + TimeWheel::SLOTS as u64, 1); // beyond horizon
        wheel.schedule(1 << 40, 2); // far future
        assert_eq!(wheel.peek_min(), Some(2));
        assert_eq!(pop(&mut wheel, 2), vec![0]);
        assert_eq!(wheel.peek_min(), Some(2 + TimeWheel::SLOTS as u64));
        // Jump straight to the migrated far entry.
        assert_eq!(pop(&mut wheel, 2 + TimeWheel::SLOTS as u64), vec![1]);
        assert_eq!(wheel.peek_min(), Some(1 << 40));
        assert_eq!(pop(&mut wheel, 1 << 40), vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_slot_different_times_do_not_collide() {
        // Two near times that alias to the same slot index must pop at
        // their own cycles.
        let mut wheel = TimeWheel::new(0);
        wheel.schedule(1, 0);
        // After popping cycle 1 the horizon moves; schedule the aliasing
        // time then (1 + SLOTS aliases slot 1).
        assert_eq!(pop(&mut wheel, 1), vec![0]);
        wheel.schedule(1 + TimeWheel::SLOTS as u64, 1);
        wheel.schedule(2, 2);
        assert_eq!(pop(&mut wheel, 2), vec![2]);
        assert_eq!(wheel.peek_min(), Some(1 + TimeWheel::SLOTS as u64));
        assert_eq!(pop(&mut wheel, 1 + TimeWheel::SLOTS as u64), vec![1]);
    }

    #[test]
    fn peek_min_matches_naive_min_under_churn() {
        // Drive the wheel through a random schedule/pop workload while
        // shadowing it with a plain sorted list; peek_min (the occupancy-
        // bitmap scan) must always agree with the true minimum.
        use crate::rng::Xoshiro256PlusPlus;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x11EE1);
        let mut wheel = TimeWheel::new(0);
        let mut shadow: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut due = Vec::new();
        for step in 0..2_000 {
            // Schedule a burst at mixed distances: same-slot, near, far.
            for id in 0..(rng.next_below(4) as usize) {
                let t = now + 1 + rng.next_below(600);
                wheel.schedule(t, id);
                shadow.push(t);
            }
            assert_eq!(wheel.peek_min(), shadow.iter().copied().min(), "step {step}");
            // Advance: half the time by one cycle, half by jumping.
            now = if rng.next_bool(0.5) {
                now + 1
            } else {
                match wheel.peek_min() {
                    Some(t) => t,
                    None => now + 1,
                }
            };
            wheel.pop_due(now, &mut due);
            shadow.retain(|&t| t > now);
            assert_eq!(wheel.len(), shadow.len(), "step {step}");
        }
    }

    #[test]
    fn cycle_by_cycle_advance_matches_jump() {
        let mut a = TimeWheel::new(0);
        let mut b = TimeWheel::new(0);
        for (t, id) in [(3u64, 0usize), (300, 1), (301, 2), (900, 3)] {
            a.schedule(t, id);
            b.schedule(t, id);
        }
        // a: advance one cycle at a time; b: jump via peek_min.
        let mut seen_a: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut due = Vec::new();
        for now in 0..=900 {
            a.pop_due(now, &mut due);
            if !due.is_empty() {
                seen_a.push((now, due.clone()));
            }
        }
        let mut seen_b: Vec<(u64, Vec<usize>)> = Vec::new();
        while let Some(t) = b.peek_min() {
            b.pop_due(t, &mut due);
            seen_b.push((t, due.clone()));
        }
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_b.len(), 4);
    }
}
