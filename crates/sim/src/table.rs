//! Plain-text table rendering for the reproduction harness.
//!
//! The `repro` binary prints each of the paper's tables and figure series as
//! aligned ASCII tables; [`Table`] handles alignment and separators.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use abs_sim::table::Table;
/// let mut t = Table::new(vec!["N", "accesses"]);
/// t.add_row(vec!["16".into(), "40.0".into()]);
/// let s = t.to_string();
/// assert!(s.contains("accesses"));
/// assert!(s.contains("40.0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Appends a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn add_display_row<D: fmt::Display>(&mut self, row: Vec<D>) -> &mut Self {
        self.add_row(row.into_iter().map(|d| d.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = *w)?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals, trimming `-0.0`.
///
/// # Examples
///
/// ```
/// assert_eq!(abs_sim::table::fmt_f64(3.14159, 2), "3.14");
/// assert_eq!(abs_sim::table::fmt_f64(-0.0001, 2), "0.00");
/// ```
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    let s = format!("{x:.decimals$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a fraction as a percentage string with one decimal.
///
/// # Examples
///
/// ```
/// assert_eq!(abs_sim::table::fmt_percent(0.255), "25.5%");
/// ```
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "v"]).with_title("demo");
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.starts_with("demo\n"));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // title, header, separator, two rows
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_row() {
        let mut t = Table::new(vec!["x"]);
        t.add_display_row(vec![1.5f64]);
        assert!(t.to_string().contains("1.5"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.0 / 3.0, 3), "0.333");
        assert_eq!(fmt_f64(-0.0, 1), "0.0");
        assert_eq!(fmt_percent(1.0), "100.0%");
    }
}
