//! Deterministic simulation substrate shared by all the simulators in this
//! workspace.
//!
//! The crate provides four things:
//!
//! * [`rng`] — a small, self-contained pseudo-random number generator family
//!   (SplitMix64 and xoshiro256++) so that every simulation in the workspace
//!   is reproducible bit-for-bit from a single `u64` seed, independent of
//!   external crate versions.
//! * [`stats`] — online mean/variance accumulators, summaries with standard
//!   deviation and confidence intervals, and integer histograms, matching the
//!   paper's methodology of averaging 100 runs and reporting the spread.
//! * [`sweep`] — a repetition runner and parameter-sweep helpers that derive
//!   per-run seeds from a master seed.
//! * [`table`] / [`series`] — plain-text table and CSV rendering used by the
//!   `repro` harness to print the paper's tables and figure series.
//! * [`check`] — an in-tree property-based testing mini-framework (the
//!   [`forall!`] macro, generators, shrinking) so the workspace needs no
//!   external test dependencies.
//! * [`kernel`] — the [`Kernel`] selector shared by every simulator that
//!   ships both a reference cycle stepper and the event-driven skip-ahead
//!   kernel (bit-identical by contract; `cycle` is the oracle).
//! * [`wheel`] — the bucketed [`wheel::TimeWheel`] that every skip-ahead
//!   kernel parks its future wake-ups in.
//! * [`bitset`] — a fixed-capacity [`bitset::FixedBitset`] with ascending
//!   iteration, the compact id-set the event kernels use at mega-`N`.
//!
//! # Examples
//!
//! ```
//! use abs_sim::rng::Xoshiro256PlusPlus;
//! use abs_sim::stats::OnlineStats;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let mut stats = OnlineStats::new();
//! for _ in 0..1000 {
//!     stats.push(rng.next_range_u64(0..100) as f64);
//! }
//! assert!((stats.mean() - 49.5).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod check;
pub mod kernel;
pub mod rng;
pub mod series;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod wheel;

pub use kernel::Kernel;
pub use rng::{SplitMix64, Xoshiro256PlusPlus};
pub use series::{Series, SeriesSet};
pub use stats::{
    median, median_abs_deviation, p50, p95, p99, quantile, Histogram, OnlineStats, Summary,
};
pub use sweep::{derive_seed, Repetitions};
pub use table::Table;

/// A simulated clock cycle count.
///
/// All simulators in the workspace measure time in abstract network cycles,
/// following the paper's Section 3 model where a memory access over the
/// network takes one cycle.
pub type Cycle = u64;
