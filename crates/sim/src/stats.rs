//! Statistics accumulators used to aggregate simulation runs.
//!
//! The paper repeats every barrier simulation 100 times and reports the mean,
//! verifying that the standard deviation stays below about 7 % of the mean.
//! [`OnlineStats`] implements Welford's numerically stable online algorithm
//! so sweeps can accumulate arbitrarily many runs without storing them, and
//! [`Histogram`] provides the integer-binned histograms behind Figures 1
//! and 3.

use std::fmt;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use abs_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by `n`), or 0.0 for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or 0.0 for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Sample standard deviation divided by the mean (coefficient of
    /// variation). The paper's methodology claim is that this stays below
    /// roughly 7 % over 100 runs.
    ///
    /// Returns 0.0 when the mean is zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.sample_std_dev() / m
        }
    }

    /// Approximate half-width of the 95 % confidence interval of the mean
    /// (normal approximation, `1.96 * s / sqrt(n)`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.sample_std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// The median of `values` (midpoint average for even counts), or 0.0 when
/// empty. Non-finite values are ignored.
///
/// This is the bench harness's primary location estimator: unlike the mean
/// it is robust to the occasional scheduler-induced outlier sample.
///
/// # Examples
///
/// ```
/// use abs_sim::stats::median;
/// assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
/// assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
/// ```
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare")); // abs-lint: allow(panic-path) -- values were filtered to finite just above
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// The median absolute deviation of `values` about their median
/// (unscaled), or 0.0 when empty.
///
/// # Examples
///
/// ```
/// use abs_sim::stats::median_abs_deviation;
/// // median = 2, |x - 2| = [1, 0, 1] → MAD = 1.
/// assert_eq!(median_abs_deviation(&[1.0, 2.0, 3.0]), 1.0);
/// ```
pub fn median_abs_deviation(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values
        .iter()
        .filter(|x| x.is_finite())
        .map(|x| (x - m).abs())
        .collect();
    median(&deviations)
}

/// The `q`-quantile of `values` by the **nearest-rank** method
/// (`q` in `[0, 1]`), or 0.0 when empty. Non-finite values are ignored.
///
/// Nearest rank is the classic conservative definition: the smallest
/// element such that at least `q · n` elements are ≤ it
/// (rank `⌈q · n⌉`, 1-based). Unlike interpolating definitions it always
/// returns an observed value, which is what the latency tables want — a
/// "p99 of 340 cycles" that no request actually experienced is not
/// reportable.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use abs_sim::stats::quantile;
/// let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
/// assert_eq!(quantile(&v, 0.5), 5.0); // rank ⌈0.5·10⌉ = 5
/// assert_eq!(quantile(&v, 0.95), 10.0); // rank ⌈9.5⌉ = 10
/// assert_eq!(quantile(&v, 0.0), 1.0); // by convention: the minimum
/// ```
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare")); // abs-lint: allow(panic-path) -- values were filtered to finite just above
    let n = v.len();
    // 1-based nearest rank ⌈q·n⌉, clamped to [1, n] (q = 0 → minimum).
    let rank = (q * n as f64).ceil() as usize;
    v[rank.clamp(1, n) - 1]
}

/// The 50th percentile (nearest-rank median) of `values`.
///
/// Note this differs from [`median`] on even counts: nearest rank picks
/// the lower of the two middle elements instead of averaging them.
pub fn p50(values: &[f64]) -> f64 {
    quantile(values, 0.50)
}

/// The 95th percentile (nearest rank) of `values`.
pub fn p95(values: &[f64]) -> f64 {
    quantile(values, 0.95)
}

/// The 99th percentile (nearest rank) of `values`.
///
/// # Examples
///
/// ```
/// use abs_sim::stats::p99;
/// let v: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(p99(&v), 99.0);
/// ```
pub fn p99(values: &[f64]) -> f64 {
    quantile(values, 0.99)
}

/// An immutable snapshot of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (n={}, min={:.2}, max={:.2})",
            self.mean, self.std_dev, self.count, self.min, self.max
        )
    }
}

/// An integer-binned histogram over `u64` values.
///
/// Bins are unit-width by default; [`Histogram::with_bin_width`] groups
/// values into wider bins, which Figure 3 uses to bucket arrival times.
///
/// # Examples
///
/// ```
/// use abs_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(3);
/// h.record(7);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// assert!((h.fraction(3) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with unit-width bins.
    pub fn new() -> Self {
        Self::with_bin_width(1)
    }

    /// Creates a histogram whose bin `k` covers
    /// `[k * bin_width, (k + 1) * bin_width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0`.
    pub fn with_bin_width(bin_width: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        Self {
            bin_width,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let bin = (value / self.bin_width) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let bin = (value / self.bin_width) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += n;
        self.total += n;
    }

    /// Number of observations that fell into the bin containing `value`.
    pub fn count(&self, value: u64) -> u64 {
        let bin = (value / self.bin_width) as usize;
        self.bins.get(bin).copied().unwrap_or(0)
    }

    /// Raw count of bin index `bin`.
    pub fn bin_count(&self, bin: usize) -> u64 {
        self.bins.get(bin).copied().unwrap_or(0)
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of allocated bins (highest occupied bin + 1).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Fraction of all observations in the bin containing `value`
    /// (0.0 when empty).
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of all observations in bins `<= value`'s bin.
    pub fn cumulative_fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bin = (value / self.bin_width) as usize;
        let sum: u64 = self.bins.iter().take(bin + 1).sum();
        sum as f64 / self.total as f64
    }

    /// Iterates over `(bin_start_value, count)` pairs for every allocated
    /// bin, including empty ones.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }

    /// The mean of the recorded values, approximated by bin start values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .iter()
            .map(|(start, count)| start as f64 * count as f64)
            .sum();
        sum / self.total as f64
    }

    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bin_width, other.bin_width,
            "cannot merge histograms with different bin widths"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (i, &c) in other.bins.iter().enumerate() {
            self.bins[i] += c;
        }
        self.total += other.total;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_known_answers() {
        // Wikipedia's worked nearest-rank example: ordered list of 10.
        let v = [3.0, 6.0, 7.0, 8.0, 8.0, 10.0, 13.0, 15.0, 16.0, 20.0];
        assert_eq!(quantile(&v, 0.25), 7.0); // rank ⌈2.5⌉ = 3
        assert_eq!(quantile(&v, 0.50), 8.0); // rank 5
        assert_eq!(quantile(&v, 0.75), 15.0); // rank 8
        assert_eq!(quantile(&v, 1.00), 20.0); // rank 10
    }

    #[test]
    fn quantile_singleton_and_empty() {
        assert_eq!(quantile(&[42.0], 0.01), 42.0);
        assert_eq!(quantile(&[42.0], 0.99), 42.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(quantile(&v, 0.5), 5.0); // rank ⌈2.5⌉ = 3 of sorted
        assert_eq!(quantile(&v, 0.2), 1.0); // rank ⌈1.0⌉ = 1
    }

    #[test]
    fn quantile_ignores_non_finite() {
        let v = [f64::NAN, 2.0, f64::INFINITY, 1.0, 3.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
    }

    #[test]
    fn percentile_shorthands() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p50(&v), 50.0);
        assert_eq!(p95(&v), 95.0);
        assert_eq!(p99(&v), 99.0);
        // 200 equal observations with one outlier: p99 still the bulk.
        let mut w = vec![5.0; 200];
        w.push(1_000.0);
        assert_eq!(p99(&w), 5.0);
    }

    #[test]
    fn p50_is_lower_middle_on_even_counts() {
        // Nearest rank never interpolates; median() does.
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p50(&v), 2.0);
        assert_eq!(median(&v), 2.5);
    }

    #[test]
    #[should_panic(expected = "quantile must lie in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.summary().mean, 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: OnlineStats = (0..100).map(|i| (i * i) as f64).collect();
        let mut a: OnlineStats = (0..37).map(|i| (i * i) as f64).collect();
        let b: OnlineStats = (37..100).map(|i| (i * i) as f64).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), before.count());
    }

    #[test]
    fn cv_and_ci() {
        let s: OnlineStats = (0..100).map(|_| 10.0).collect();
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);

        let s2: OnlineStats = [8.0, 12.0].into_iter().collect();
        assert!(s2.coefficient_of_variation() > 0.0);
        assert!(s2.ci95_half_width() > 0.0);
    }

    #[test]
    fn summary_display() {
        let s: OnlineStats = [1.0, 3.0].into_iter().collect();
        let d = s.summary().to_string();
        assert!(d.contains("2.00"));
        assert!(d.contains("n=2"));
    }

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.num_bins(), 6);
    }

    #[test]
    fn histogram_binned() {
        let mut h = Histogram::with_bin_width(10);
        h.record(0);
        h.record(9);
        h.record(10);
        assert_eq!(h.count(5), 2); // bin [0,10)
        assert_eq!(h.count(15), 1); // bin [10,20)
    }

    #[test]
    fn histogram_cumulative() {
        let h: Histogram = [1u64, 2, 3, 4].into_iter().collect();
        assert!((h.cumulative_fraction(2) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction(4) - 1.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 2);
        assert_eq!(a.total(), 5);
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn histogram_merge_width_mismatch() {
        let mut a = Histogram::with_bin_width(2);
        let b = Histogram::with_bin_width(3);
        a.merge(&b);
    }

    #[test]
    fn histogram_record_n_and_mean() {
        let mut h = Histogram::new();
        h.record_n(10, 5);
        h.record_n(20, 5);
        assert_eq!(h.total(), 10);
        assert!((h.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn median_known_answers() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.5]), 7.5);
        assert_eq!(median(&[2.0, 1.0]), 1.5);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        // Robust to one wild outlier.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0, 1e12]), 3.0);
        // Non-finite samples are ignored, not propagated.
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), 2.0);
        assert_eq!(median(&[f64::INFINITY, 5.0]), 5.0);
    }

    #[test]
    fn mad_known_answers() {
        assert_eq!(median_abs_deviation(&[]), 0.0);
        assert_eq!(median_abs_deviation(&[42.0]), 0.0);
        // median = 2, deviations [1, 0, 1] → 1.
        assert_eq!(median_abs_deviation(&[1.0, 2.0, 3.0]), 1.0);
        // Constant data has zero spread.
        assert_eq!(median_abs_deviation(&[5.0; 10]), 0.0);
        // Textbook example: median 2, deviations [1,0,0,0,2,7] → median 0.5.
        assert_eq!(
            median_abs_deviation(&[1.0, 2.0, 2.0, 2.0, 4.0, 9.0]),
            0.5
        );
        // An outlier moves the MAD far less than the standard deviation.
        let with_outlier = [10.0, 10.0, 10.0, 10.0, 1000.0];
        assert_eq!(median_abs_deviation(&with_outlier), 0.0);
    }

    #[test]
    fn histogram_iter_covers_bins() {
        let h: Histogram = [0u64, 3].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 0), (3, 1)]);
    }
}
