//! Simulation-kernel selection.
//!
//! Every simulator with a per-cycle hot loop exists in two bit-identical
//! implementations:
//!
//! * [`Kernel::Cycle`] — the literal cycle stepper: every simulated cycle
//!   rescans the full processor/port population. Slow, but a direct
//!   transcription of the model; it is retained as the **reference
//!   oracle** that the equivalence suite checks the fast kernel against.
//! * [`Kernel::Event`] — the event-driven skip-ahead kernel: incremental
//!   active sets updated at phase transitions, a bucketed time wheel for
//!   future wake-ups, and a next-event clock that jumps over dead cycles.
//!   This is the default everywhere.
//!
//! "Bit-identical" is meant literally: same RNG draw sequence, same result
//! structs, and — with an enabled trace sink — the same event bytes. The
//! contract is enforced by the `kernel_equivalence` suite in `abs-bench`.

use std::fmt;
use std::str::FromStr;

/// Which simulation kernel drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// The reference cycle stepper: O(population) work per simulated cycle.
    Cycle,
    /// The event-driven skip-ahead kernel: O(active) work per busy cycle,
    /// dead cycles skipped via the next-event clock.
    #[default]
    Event,
}

impl Kernel {
    /// Both kernels, reference oracle first (sweep/benchmark order).
    pub const ALL: [Kernel; 2] = [Kernel::Cycle, Kernel::Event];

    /// The CLI/label name (`cycle` or `event`).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Cycle => "cycle",
            Kernel::Event => "event",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown kernel name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKernel(pub String);

impl fmt::Display for UnknownKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown kernel {:?}; known: cycle event", self.0)
    }
}

impl std::error::Error for UnknownKernel {}

impl FromStr for Kernel {
    type Err = UnknownKernel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(Kernel::Cycle),
            "event" => Ok(Kernel::Event),
            other => Err(UnknownKernel(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_event() {
        assert_eq!(Kernel::default(), Kernel::Event);
    }

    #[test]
    fn names_round_trip() {
        for k in Kernel::ALL {
            assert_eq!(k.name().parse::<Kernel>(), Ok(k));
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn unknown_name_rejected() {
        let err = "warp".parse::<Kernel>().unwrap_err();
        assert_eq!(err, UnknownKernel("warp".to_string()));
        assert!(err.to_string().contains("warp"));
        assert!(err.to_string().contains("cycle event"));
    }
}
