//! A fixed-capacity bitset over small integer ids.
//!
//! The event-driven kernels keep sets of processor ids that must be
//! visited **in ascending id order** (the cycle stepper's scan order, which
//! the bit-identity contract pins down). A sorted `Vec<usize>` gives that
//! order but costs an `O(len)` memmove per insert — ruinous when a
//! queue-on-threshold policy parks most of an N = 10⁶ barrier. A
//! [`FixedBitset`] makes insert/remove O(1), keeps the whole set in
//! `capacity / 8` bytes (compact enough to stay cache-resident at mega-N),
//! and iterates set bits in ascending order via trailing-zeros scanning.

/// A set of `usize` ids below a fixed capacity, stored one bit per id.
///
/// # Examples
///
/// ```
/// use abs_sim::bitset::FixedBitset;
///
/// let mut set = FixedBitset::new(200);
/// set.insert(150);
/// set.insert(3);
/// set.insert(64);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 64, 150]);
/// assert!(set.contains(64));
/// set.remove(64);
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FixedBitset {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl FixedBitset {
    /// Creates an empty set accepting ids in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// The id bound this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` is in the set (ids at or above capacity are never in).
    pub fn contains(&self, id: usize) -> bool {
        id < self.capacity && self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Adds `id` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.capacity, "id {id} out of capacity {}", self.capacity);
        let word = &mut self.words[id / 64];
        let mask = 1u64 << (id % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `id` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.capacity {
            return false;
        }
        let word = &mut self.words[id / 64];
        let mask = 1u64 << (id % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= present as usize;
        present
    }

    /// Empties the set, keeping its capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates the ids in the set in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the ids of a [`FixedBitset`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

impl<'a> IntoIterator for &'a FixedBitset {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = FixedBitset::new(130);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "duplicate insert reports false");
        assert_eq!(set.len(), 4);
        assert!(set.contains(0) && set.contains(129));
        assert!(!set.contains(1));
        assert!(set.remove(63));
        assert!(!set.remove(63));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn iteration_is_ascending_and_matches_sorted_vec() {
        // The event kernels rely on iter() visiting ids exactly as a
        // sorted Vec<usize> would.
        let ids = [77usize, 3, 128, 64, 63, 0, 200, 199, 5];
        let mut set = FixedBitset::new(256);
        for &id in &ids {
            set.insert(id);
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut set = FixedBitset::new(100);
        set.insert(42);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(42));
        assert_eq!(set.capacity(), 100);
        set.insert(99);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn zero_capacity_behaves() {
        let mut set = FixedBitset::new(0);
        assert!(set.is_empty());
        assert!(!set.contains(0));
        assert!(!set.remove(0));
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        FixedBitset::new(8).insert(8);
    }

    #[test]
    fn dense_set_round_trips() {
        let n = 1000;
        let mut set = FixedBitset::new(n);
        for id in 0..n {
            set.insert(id);
        }
        assert_eq!(set.len(), n);
        assert_eq!(set.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
    }
}
