//! An in-tree property-based testing mini-framework.
//!
//! The workspace's hermetic-build policy (see `tests/hermetic.rs`) rules
//! out `proptest`, so this module provides the subset the test suite
//! actually needs, driven by the same [`Xoshiro256PlusPlus`] generator as
//! every simulator:
//!
//! * [`Gen`] — a value generator paired with a shrinker, built from the
//!   combinators in this module ([`any_u64`], [`u64_in`], [`f64_in`],
//!   [`vec_of`], [`tuple2`], …).
//! * [`forall`] / [`forall!`](crate::forall) — run a property over a
//!   configurable number of generated cases. On failure the input is
//!   shrunk to a (locally) minimal counterexample and the panic message
//!   reports the master seed so the exact case sequence can be replayed
//!   with `ABS_CHECK_SEED=<seed>`.
//!
//! Case seeds are derived from the master seed with
//! [`derive_seed`](crate::sweep::derive_seed), so the `i`-th case of a run
//! is a pure function of `(master_seed, i)`: same seed, same inputs,
//! bit-for-bit — the property analogue of the simulators' determinism
//! guarantee.
//!
//! # Examples
//!
//! ```
//! use abs_sim::check::{self, Config};
//! use abs_sim::forall;
//!
//! forall!(Config::with_cases(64), (a in check::u64_in(0..=1000), b in check::u64_in(0..=1000)) {
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Xoshiro256PlusPlus;
use crate::sweep::derive_seed;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;
/// Default master seed (overridable with the `ABS_CHECK_SEED` env var).
pub const DEFAULT_SEED: u64 = 0x1989_0605;
/// Default bound on shrink attempts per failing property.
pub const DEFAULT_MAX_SHRINK_STEPS: u32 = 1024;

/// How a property run is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Master seed; case `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Upper bound on property re-executions while shrinking.
    pub max_shrink_steps: u32,
}

impl Config {
    /// A config running `cases` cases with the default (or `ABS_CHECK_SEED`
    /// overridden) master seed.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// A config with an explicit master seed (ignores `ABS_CHECK_SEED`).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("ABS_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Self {
            cases: DEFAULT_CASES,
            seed,
            max_shrink_steps: DEFAULT_MAX_SHRINK_STEPS,
        }
    }
}

/// A generator: samples values from an RNG and proposes smaller variants
/// of a failing value for shrinking.
pub struct Gen<T> {
    sample: Box<dyn Fn(&mut Xoshiro256PlusPlus) -> T>,
    shrink: Box<dyn Fn(&T) -> Vec<T>>,
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from a sampling closure and a shrinking closure.
    ///
    /// The shrinker returns candidate replacements for a failing value,
    /// "smallest" (most aggressively shrunk) first; it must only propose
    /// values the sampler could itself produce, and must not propose the
    /// input value (or shrinking may loop until the step budget runs out).
    pub fn new(
        sample: impl Fn(&mut Xoshiro256PlusPlus) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Self {
            sample: Box::new(sample),
            shrink: Box::new(shrink),
        }
    }

    /// A generator that never shrinks.
    pub fn no_shrink(sample: impl Fn(&mut Xoshiro256PlusPlus) -> T + 'static) -> Self {
        Self::new(sample, |_| Vec::new())
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> T {
        (self.sample)(rng)
    }

    /// Candidate shrinks of `value`, most aggressive first.
    pub fn shrink_candidates(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Any `u64`, shrinking toward zero.
pub fn any_u64() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64(), |&v| shrink_u64_toward(v, 0))
}

/// A `u64` uniform in the inclusive range, shrinking toward the low end.
///
/// # Panics
///
/// Panics (when sampled) if the range is empty.
pub fn u64_in(range: RangeInclusive<u64>) -> Gen<u64> {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(lo <= hi, "empty range");
    Gen::new(
        move |rng| {
            if lo == 0 && hi == u64::MAX {
                rng.next_u64()
            } else {
                lo + rng.next_below(hi - lo + 1)
            }
        },
        move |&v| shrink_u64_toward(v, lo),
    )
}

/// A `u32` uniform in the inclusive range, shrinking toward the low end.
pub fn u32_in(range: RangeInclusive<u32>) -> Gen<u32> {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(lo <= hi, "empty range");
    Gen::new(
        move |rng| {
            let draw = rng.next_below(u64::from(hi - lo) + 1);
            lo + u32::try_from(draw).unwrap_or(0) // draw <= hi - lo by construction
        },
        move |&v| {
            shrink_u64_toward(u64::from(v), u64::from(lo))
                .into_iter()
                .map(|x| u32::try_from(x).unwrap_or(u32::MAX))
                .collect()
        },
    )
}

/// A `usize` uniform in the half-open range, shrinking toward the low end.
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi, "empty range");
    Gen::new(
        move |rng| lo + rng.next_below_usize(hi - lo),
        move |&v| {
            shrink_u64_toward(v as u64, lo as u64)
                .into_iter()
                .map(|x| x as usize)
                .collect()
        },
    )
}

/// An `f64` uniform in the half-open range, shrinking toward the low end
/// (and toward round values).
pub fn f64_in(range: Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi, "empty range");
    assert!(lo.is_finite() && hi.is_finite(), "range must be finite");
    Gen::new(
        move |rng| lo + rng.next_f64() * (hi - lo),
        move |&v| {
            let mut out = Vec::new();
            let mut push = |c: f64| {
                if c != v && (lo..hi).contains(&c) && !out.contains(&c) {
                    out.push(c);
                }
            };
            push(lo);
            push(0.0);
            push(lo + (v - lo) / 2.0);
            push(v.trunc());
            out
        },
    )
}

/// A `Vec<T>` with a length uniform in `len` and elements from `elem`.
///
/// Shrinks by dropping halves, dropping single elements (down to the
/// minimum length), and shrinking individual elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    let (lo, hi) = (len.start, len.end);
    assert!(lo < hi, "empty length range");
    // Both closures need the element generator, so share it.
    let elem = std::rc::Rc::new(elem);
    let sample_elem = std::rc::Rc::clone(&elem);
    Gen::new(
        move |rng| {
            let n = lo + rng.next_below_usize(hi - lo);
            (0..n).map(|_| sample_elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let n = v.len();
            // Drop the back half, then the front half.
            if n / 2 >= lo && n > 1 {
                out.push(v[..n / 2].to_vec());
                out.push(v[n - n / 2..].to_vec());
            }
            // Drop single elements (bounded to keep candidate lists small).
            if n > lo {
                for i in 0..n.min(8) {
                    let mut w = v.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            // Shrink single elements, first candidate each.
            for i in 0..n.min(8) {
                if let Some(smaller) = elem.shrink_candidates(&v[i]).into_iter().next() {
                    let mut w = v.clone();
                    w[i] = smaller;
                    out.push(w);
                }
            }
            out
        },
    )
}

/// A pair of independent generators; shrinks one component at a time.
pub fn tuple2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    // Both closures need the inner generators, so share them.
    let a = std::rc::Rc::new(a);
    let b = std::rc::Rc::new(b);
    let (sa, sb) = (std::rc::Rc::clone(&a), std::rc::Rc::clone(&b));
    Gen {
        sample: Box::new(move |rng| (sa.sample(rng), sb.sample(rng))),
        shrink: Box::new(move |(va, vb): &(A, B)| {
            let mut out: Vec<(A, B)> = a
                .shrink_candidates(va)
                .into_iter()
                .map(|ca| (ca, vb.clone()))
                .collect();
            out.extend(
                b.shrink_candidates(vb)
                    .into_iter()
                    .map(|cb| (va.clone(), cb)),
            );
            out
        }),
    }
}

/// Turns a caught panic payload into a printable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Proposes shrinks of `v` toward `origin`: the origin itself, the halfway
/// point, and the predecessor.
fn shrink_u64_toward(v: u64, origin: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v > origin {
        out.push(origin);
        let half = origin + (v - origin) / 2;
        if half != origin && half != v {
            out.push(half);
        }
        if v - 1 != origin && v - 1 != half {
            out.push(v - 1);
        }
    }
    out
}

/// Runs `prop` over `config.cases` generated inputs.
///
/// The property signals failure by panicking (plain `assert!` /
/// `assert_eq!` work). On failure the input is shrunk greedily — repeatedly
/// replacing it with the first shrink candidate that still fails — and the
/// final panic reports the case index, master seed, original and minimal
/// counterexamples.
///
/// # Panics
///
/// Panics if any case fails.
pub fn forall<T, P>(name: &str, config: Config, gen: &Gen<T>, prop: P)
where
    T: Debug + 'static,
    P: Fn(&T),
{
    let run = |value: &T| -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(panic_message)
    };
    for case in 0..config.cases {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(derive_seed(config.seed, u64::from(case)));
        let value = gen.sample(&mut rng);
        let Err(original_error) = run(&value) else {
            continue;
        };

        // Greedy first-fail descent.
        let mut minimal = value;
        let mut minimal_error = original_error.clone();
        let mut steps = 0u32;
        'shrinking: while steps < config.max_shrink_steps {
            for candidate in gen.shrink_candidates(&minimal) {
                steps += 1;
                if let Err(e) = run(&candidate) {
                    minimal = candidate;
                    minimal_error = e;
                    continue 'shrinking;
                }
                if steps >= config.max_shrink_steps {
                    break;
                }
            }
            break;
        }

        panic!(
            "property {name} failed at case {case}/{cases} \
             (master seed {seed:#x}; replay with ABS_CHECK_SEED={seed})\n\
             minimal counterexample (after {steps} shrink steps): {minimal:?}\n\
             error: {minimal_error}",
            cases = config.cases,
            seed = config.seed,
        );
    }
}

/// Chains generators into right-nested [`tuple2`]s: `a, b, c` becomes
/// `tuple2(a, tuple2(b, c))`. Used by [`forall!`](crate::forall).
#[doc(hidden)]
#[macro_export]
macro_rules! __forall_gens {
    ($g:expr $(,)?) => { $g };
    ($g:expr, $($rest:expr),+ $(,)?) => {
        $crate::check::tuple2($g, $crate::__forall_gens!($($rest),+))
    };
}

/// Builds the right-nested tuple pattern matching [`__forall_gens!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __forall_pat {
    ($name:ident $(,)?) => { $name };
    ($name:ident, $($rest:ident),+ $(,)?) => {
        ($name, $crate::__forall_pat!($($rest),+))
    };
}

/// Runs a property over generated inputs, proptest-style.
///
/// Each binding draws from a [`Gen`](crate::check::Gen); the body may use
/// plain `assert!`/`assert_eq!`. Bound values are cloned out of the
/// generated input, so `u64` bindings are plain `u64` and `Vec` bindings
/// are owned `Vec`s.
///
/// ```
/// use abs_sim::check::{self, Config};
/// use abs_sim::forall;
///
/// forall!(Config::with_cases(32), (n in check::usize_in(1..100)) {
///     assert!(n >= 1 && n < 100);
/// });
/// ```
#[macro_export]
macro_rules! forall {
    ($config:expr, ($($name:ident in $gen:expr),+ $(,)?) $body:block) => {{
        let __gen = $crate::__forall_gens!($($gen),+);
        $crate::check::forall(
            concat!(file!(), ":", line!()),
            $config,
            &__gen,
            |__value| {
                let $crate::__forall_pat!($($name),+) = __value;
                $(let $name = ::std::clone::Clone::clone($name);)+
                $body
            },
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(7)
    }

    #[test]
    fn u64_in_respects_bounds() {
        let g = u64_in(10..=20);
        let mut rng = fresh_rng();
        for _ in 0..500 {
            let v = g.sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn full_range_u64_samples() {
        let g = u64_in(0..=u64::MAX);
        let mut rng = fresh_rng();
        // Two consecutive full-range draws colliding would be miraculous.
        assert_ne!(g.sample(&mut rng), g.sample(&mut rng));
    }

    #[test]
    fn shrink_moves_toward_low_end() {
        let g = u64_in(5..=100);
        for c in g.shrink_candidates(&40) {
            assert!((5..40).contains(&c));
        }
        assert!(g.shrink_candidates(&5).is_empty());
    }

    #[test]
    fn f64_in_respects_bounds() {
        let g = f64_in(-2.0..3.0);
        let mut rng = fresh_rng();
        for _ in 0..500 {
            let v = g.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
        for c in g.shrink_candidates(&2.5) {
            assert!((-2.0..3.0).contains(&c));
            assert_ne!(c, 2.5);
        }
    }

    #[test]
    fn vec_of_respects_length() {
        let g = vec_of(u64_in(0..=9), 2..6);
        let mut rng = fresh_rng();
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_shrinks_never_undershoot_min_len() {
        let g = vec_of(u64_in(0..=9), 3..8);
        let v = vec![1, 2, 3, 4, 5, 6, 7];
        for c in g.shrink_candidates(&v) {
            assert!(c.len() >= 3, "shrunk below minimum length: {c:?}");
        }
    }

    #[test]
    fn forall_passes_trivially() {
        forall("trivial", Config::with_cases(16), &any_u64(), |_| {});
    }

    #[test]
    fn forall_shrinks_to_minimal_counterexample() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            forall(
                "ge100",
                Config::with_seed(42),
                &u64_in(0..=100_000),
                |&v| assert!(v < 100, "value {v} too big"),
            );
        }))
        .unwrap_err();
        let msg = panic_message(err);
        // Greedy halving from any failing start lands exactly on 100, the
        // smallest failing input.
        assert!(
            msg.contains("minimal counterexample") && msg.contains("100"),
            "unexpected message: {msg}"
        );
        assert!(msg.contains("ABS_CHECK_SEED=42"), "no replay hint: {msg}");
    }

    #[test]
    fn same_seed_reproduces_same_case_sequence() {
        // The determinism guarantee behind the replay hint: case i depends
        // only on (master seed, i).
        let g = tuple2(any_u64(), vec_of(u64_in(0..=99), 1..10));
        let draw = |seed: u64| -> Vec<(u64, Vec<u64>)> {
            (0..32)
                .map(|i| {
                    let mut rng = Xoshiro256PlusPlus::seed_from_u64(derive_seed(seed, i));
                    g.sample(&mut rng)
                })
                .collect()
        };
        assert_eq!(draw(123), draw(123));
        assert_ne!(draw(123), draw(124));
    }

    #[test]
    fn forall_macro_binds_multiple_values() {
        forall!(Config::with_cases(32), (a in u64_in(1..=50), b in u64_in(1..=50), v in vec_of(u64_in(0..=5), 1..4)) {
            assert!(a >= 1 && b <= 50);
            assert!(!v.is_empty());
        });
    }

    #[test]
    fn tuple2_shrinks_one_side_at_a_time() {
        let g = tuple2(u64_in(0..=10), u64_in(0..=10));
        let cands = g.shrink_candidates(&(4, 6));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            assert!(
                (a == 4) != (b == 6),
                "exactly one component should change: ({a}, {b})"
            );
        }
    }
}
