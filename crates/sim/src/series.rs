//! Named data series and CSV export.
//!
//! Each of the paper's figures is a family of curves over a shared x-axis
//! (usually the processor count). [`SeriesSet`] collects those curves and can
//! render them as an aligned table or CSV so plots can be regenerated with
//! any external tool.

use std::fmt;

use crate::table::{fmt_f64, Table};

/// One named curve: a label plus `(x, y)` points.
///
/// # Examples
///
/// ```
/// use abs_sim::series::Series;
/// let mut s = Series::new("no backoff");
/// s.push(2.0, 5.0);
/// s.push(4.0, 10.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.y_at(4.0), Some(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new<S: Into<String>>(label: S) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value recorded for an exact x, if any.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

/// A family of curves over a shared x-axis — one paper figure.
///
/// # Examples
///
/// ```
/// use abs_sim::series::SeriesSet;
/// let mut set = SeriesSet::new("Figure 5", "N");
/// set.add_point("no backoff", 2.0, 5.0);
/// set.add_point("base 2", 2.0, 4.0);
/// let csv = set.to_csv();
/// assert!(csv.starts_with("N,no backoff,base 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSet {
    title: String,
    x_label: String,
    series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new<S: Into<String>, X: Into<String>>(title: S, x_label: X) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Adds a point to the series named `label`, creating the series if it
    /// does not exist yet.
    pub fn add_point(&mut self, label: &str, x: f64, y: f64) {
        if let Some(s) = self.series.iter_mut().find(|s| s.label() == label) {
            s.push(x, y);
        } else {
            let mut s = Series::new(label);
            s.push(x, y);
            self.series.push(s);
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label() == label)
    }

    /// Iterates over all series in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the set has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The sorted union of all x values across series.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN x values")); // abs-lint: allow(panic-path) -- x values come from finite sweep grids, never NaN
        xs.dedup();
        xs
    }

    /// Renders as CSV with one column per series.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(s.label());
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&fmt_f64(x, 0));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    out.push_str(&fmt_f64(y, 3));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned ASCII table.
    pub fn to_table(&self) -> Table {
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.label().to_string()));
        let mut t = Table::new(headers).with_title(self.title.clone());
        for x in self.x_values() {
            let mut row = vec![fmt_f64(x, 0)];
            for s in &self.series {
                row.push(s.y_at(x).map(|y| fmt_f64(y, 2)).unwrap_or_default());
            }
            t.add_row(row);
        }
        t
    }
}

impl fmt::Display for SeriesSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let mut s = Series::new("x");
        s.extend([(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.points(), &[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.y_at(3.0), Some(4.0));
        assert_eq!(s.y_at(9.0), None);
        assert!(!s.is_empty());
    }

    #[test]
    fn set_collects_by_label() {
        let mut set = SeriesSet::new("t", "N");
        set.add_point("a", 1.0, 10.0);
        set.add_point("a", 2.0, 20.0);
        set.add_point("b", 1.0, 5.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.series("a").unwrap().len(), 2);
        assert_eq!(set.x_values(), vec![1.0, 2.0]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut set = SeriesSet::new("t", "N");
        set.add_point("a", 2.0, 1.5);
        set.add_point("b", 2.0, 2.5);
        set.add_point("a", 4.0, 3.0);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "N,a,b");
        assert_eq!(lines[1], "2,1.500,2.500");
        // b has no point at x=4 -> empty cell
        assert_eq!(lines[2], "4,3.000,");
    }

    #[test]
    fn table_render() {
        let mut set = SeriesSet::new("Figure X", "N");
        set.add_point("curve", 2.0, 1.0);
        let rendered = set.to_string();
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("curve"));
    }
}
