//! Repetition and parameter-sweep helpers.
//!
//! The paper's methodology (Section 5.2) repeats each barrier simulation 100
//! times with fresh random arrivals and averages. [`Repetitions`] packages
//! that pattern: it derives an independent seed per run from a master seed
//! and folds each run's scalar outputs into [`OnlineStats`] accumulators.

use crate::rng::SplitMix64;
use crate::stats::{OnlineStats, Summary};

/// Derives the seed for repetition `index` of an experiment from a master
/// `seed`.
///
/// Uses SplitMix64 over the pair so that consecutive indices produce
/// statistically independent streams.
///
/// # Examples
///
/// ```
/// use abs_sim::sweep::derive_seed;
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// ```
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let base = sm.next_u64();
    let mut sm2 = SplitMix64::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    sm2.next_u64()
}

/// Runs an experiment closure a fixed number of times with derived seeds and
/// aggregates every returned metric.
///
/// The closure returns a vector of named metrics per run; metrics are matched
/// positionally across runs (the names from the first run are kept).
///
/// # Examples
///
/// ```
/// use abs_sim::sweep::Repetitions;
///
/// let outcome = Repetitions::new(50, 1234).run(|seed| {
///     // A toy "simulation": pseudo-random but seed-deterministic value.
///     vec![("metric", (seed % 100) as f64)]
/// });
/// assert_eq!(outcome.runs(), 50);
/// assert_eq!(outcome.metric_names(), ["metric"]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repetitions {
    runs: u32,
    seed: u64,
}

impl Repetitions {
    /// Creates a runner that performs `runs` repetitions derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn new(runs: u32, seed: u64) -> Self {
        assert!(runs > 0, "at least one run is required");
        Self { runs, seed }
    }

    /// The paper's default: 100 repetitions.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(100, seed)
    }

    /// Number of repetitions configured.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-repetition seeds, in repetition order.
    ///
    /// This is the exact seed sequence [`run`](Self::run) feeds the
    /// experiment; parallel executors (e.g. `abs-exec`) use it to build one
    /// job per repetition and then fold the results back with
    /// [`collect_runs`](Self::collect_runs).
    pub fn seeds(&self) -> Vec<u64> {
        (0..u64::from(self.runs))
            .map(|i| derive_seed(self.seed, i))
            .collect()
    }

    /// Executes the experiment once per repetition and aggregates metrics.
    ///
    /// # Panics
    ///
    /// Panics if runs return different numbers of metrics.
    pub fn run<F>(&self, mut experiment: F) -> SweepOutcome
    where
        F: FnMut(u64) -> Vec<(&'static str, f64)>,
    {
        let mut names: Vec<&'static str> = Vec::new();
        let mut stats: Vec<OnlineStats> = Vec::new();
        for i in 0..self.runs {
            let run_seed = derive_seed(self.seed, i as u64);
            let metrics = experiment(run_seed);
            if i == 0 {
                names = metrics.iter().map(|(n, _)| *n).collect();
                stats = vec![OnlineStats::new(); metrics.len()];
            }
            assert_eq!(
                metrics.len(),
                stats.len(),
                "every run must return the same metrics"
            );
            for (j, (_, v)) in metrics.into_iter().enumerate() {
                stats[j].push(v);
            }
        }
        SweepOutcome {
            runs: self.runs,
            names,
            stats,
        }
    }

    /// Aggregates pre-computed per-run metric vectors, one per repetition
    /// in repetition order — the commit half of the parallel path.
    ///
    /// `collect_runs(runs)` equals `run(f)` whenever `runs[i] ==
    /// f(seeds()[i])`: the fold is the same streaming push, in the same
    /// order, as the sequential loop.
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from [`runs`](Self::runs) or the
    /// metric vectors disagree in length.
    pub fn collect_runs(&self, runs: Vec<Vec<(&'static str, f64)>>) -> SweepOutcome {
        assert_eq!(
            runs.len(),
            self.runs as usize,
            "one metric vector per repetition is required"
        );
        let mut names: Vec<&'static str> = Vec::new();
        let mut stats: Vec<OnlineStats> = Vec::new();
        for (i, metrics) in runs.into_iter().enumerate() {
            if i == 0 {
                names = metrics.iter().map(|(n, _)| *n).collect();
                stats = vec![OnlineStats::new(); metrics.len()];
            }
            assert_eq!(
                metrics.len(),
                stats.len(),
                "every run must return the same metrics"
            );
            for (j, (_, v)) in metrics.into_iter().enumerate() {
                stats[j].push(v);
            }
        }
        SweepOutcome {
            runs: self.runs,
            names,
            stats,
        }
    }
}

/// Aggregated results of a [`Repetitions::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    runs: u32,
    names: Vec<&'static str>,
    stats: Vec<OnlineStats>,
}

impl SweepOutcome {
    /// Number of runs aggregated.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// Names of the metrics, in the order returned by the experiment.
    pub fn metric_names(&self) -> &[&'static str] {
        &self.names
    }

    /// Mean of the named metric.
    ///
    /// # Panics
    ///
    /// Panics if no metric has that name.
    pub fn mean(&self, name: &str) -> f64 {
        self.stats_for(name).mean()
    }

    /// Full summary of the named metric.
    ///
    /// # Panics
    ///
    /// Panics if no metric has that name.
    pub fn summary(&self, name: &str) -> Summary {
        self.stats_for(name).summary()
    }

    /// Coefficient of variation of the named metric, for checking the
    /// paper's "< 7 % standard deviation" methodology claim.
    ///
    /// # Panics
    ///
    /// Panics if no metric has that name.
    pub fn coefficient_of_variation(&self, name: &str) -> f64 {
        self.stats_for(name).coefficient_of_variation()
    }

    fn stats_for(&self, name: &str) -> &OnlineStats {
        let idx = self
            .names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown metric {name:?}"));
        &self.stats[idx]
    }
}

/// Generates logarithmically spaced processor counts `2, 4, 8, ..., max`,
/// the x-axis of the paper's Figures 4–10.
///
/// # Examples
///
/// ```
/// use abs_sim::sweep::power_of_two_counts;
/// assert_eq!(power_of_two_counts(16), vec![2, 4, 8, 16]);
/// ```
pub fn power_of_two_counts(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 2usize;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let s: Vec<u64> = (0..32).map(|i| derive_seed(7, i)).collect();
        let s2: Vec<u64> = (0..32).map(|i| derive_seed(7, i)).collect();
        assert_eq!(s, s2);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn repetitions_aggregate() {
        let outcome = Repetitions::new(10, 99).run(|_| vec![("a", 2.0), ("b", 4.0)]);
        assert_eq!(outcome.runs(), 10);
        assert_eq!(outcome.mean("a"), 2.0);
        assert_eq!(outcome.mean("b"), 4.0);
        assert_eq!(outcome.summary("a").count, 10);
        assert_eq!(outcome.coefficient_of_variation("a"), 0.0);
    }

    #[test]
    fn repetitions_pass_distinct_seeds() {
        let mut seeds = Vec::new();
        Repetitions::new(5, 123).run(|s| {
            seeds.push(s);
            vec![("x", 0.0)]
        });
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn collect_runs_equals_run() {
        let reps = Repetitions::new(25, 4242);
        let f = |seed: u64| {
            vec![
                ("m1", (seed % 97) as f64),
                ("m2", (seed % 13) as f64 * 0.5),
            ]
        };
        let sequential = reps.run(f);
        let collected = reps.collect_runs(reps.seeds().into_iter().map(f).collect());
        assert_eq!(collected, sequential);
    }

    #[test]
    fn seeds_match_run_order() {
        let reps = Repetitions::new(6, 77);
        let mut observed = Vec::new();
        reps.run(|s| {
            observed.push(s);
            vec![("x", 0.0)]
        });
        assert_eq!(reps.seeds(), observed);
    }

    #[test]
    #[should_panic(expected = "one metric vector per repetition")]
    fn collect_runs_rejects_wrong_count() {
        Repetitions::new(3, 0).collect_runs(vec![vec![("a", 1.0)]]);
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        let outcome = Repetitions::new(2, 0).run(|_| vec![("a", 1.0)]);
        outcome.mean("nope");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        Repetitions::new(0, 0);
    }

    #[test]
    fn paper_default_is_100() {
        assert_eq!(Repetitions::paper_default(0).runs(), 100);
    }

    #[test]
    fn power_counts() {
        assert_eq!(power_of_two_counts(512).len(), 9);
        assert_eq!(power_of_two_counts(1), Vec::<usize>::new());
        assert_eq!(power_of_two_counts(3), vec![2]);
    }
}
